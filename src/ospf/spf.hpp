// Shortest-path-first route computation (§16), single area, with
// equal-cost multipath — flat kernel, memoizing cache, and a retained
// naive reference implementation.
//
// The flat kernel (`compute_routes`) runs Dijkstra over dense index-based
// arrays: LSAs are deduplicated into flat per-type vectors fed from the
// Lsdb's typed index, vertices are small integers (routers sorted by id,
// then transit networks sorted by DR address — exactly the tie order of
// the reference's (is_network, id) vertex ordering, so equal-cost pops
// happen in the same sequence and ECMP hop propagation is identical), the
// candidate list is a binary heap of packed (dist, index) words, and
// next-hop sets are util::SmallVec. All working storage lives in a
// caller-owned SpfScratch so repeated recomputes are allocation-free once
// warm.
//
// `RouteCache` memoizes the kernel's output keyed by the Lsdb's content
// version plus an age-validity horizon: the earliest simulated instant at
// which any live LSA crosses MaxAge (which changes the collection outcome
// without a version bump). Probes inside [computed_at, valid_until) with
// an unchanged version return the cached vector untouched.
//
// `compute_routes_reference` is the original std::map/std::set
// implementation, kept as the oracle for the SPF equivalence property
// suite (tests/ospf/spf_property_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "ospf/lsdb.hpp"
#include "util/small_vec.hpp"
#include "util/time.hpp"

namespace nidkit::ospf {

/// A computed route (SPF output). Equal-cost multipath is supported:
/// `next_hops` lists every tied next-hop router; `via` is the primary
/// (lowest router id), kept for convenience.
struct Route {
  Ipv4Addr prefix;
  Ipv4Addr mask;
  std::uint32_t cost = 0;
  RouterId via;  ///< primary next hop (0 for directly attached)
  std::vector<RouterId> next_hops;  ///< all equal-cost next hops

  friend bool operator==(const Route&, const Route&) = default;
};

/// Reusable working storage for the flat SPF kernel. Vectors are cleared
/// (capacity retained) at the start of every compute, so a warm scratch
/// makes recomputes allocation-free.
struct SpfScratch {
  using HopSet = util::SmallVec<RouterId, 4>;

  /// One deduplicated router/network LSA (nullptr body = wrong variant
  /// stored under the key; participates in dedup but acts as absent).
  struct RouterSlot {
    Ipv4Addr id;
    const RouterLsaBody* body = nullptr;
  };
  struct NetworkSlot {
    Ipv4Addr id;  ///< DR interface address
    const NetworkLsaBody* body = nullptr;
  };
  struct ExternalSlot {
    Ipv4Addr prefix;
    RouterId origin;
    const ExternalLsaBody* body = nullptr;
  };

  std::vector<RouterSlot> routers;
  std::vector<NetworkSlot> networks;
  std::vector<ExternalSlot> externals;

  // Dijkstra state, indexed by vertex (router index, or R + network index).
  std::vector<std::uint32_t> dist;
  std::vector<std::uint8_t> reached;
  std::vector<std::uint8_t> done;
  std::vector<HopSet> hops;
  std::vector<std::uint64_t> heap;  ///< packed (dist << 32 | vertex index)

  /// Route offers accumulated before the final (prefix, mask) group merge.
  struct Offer {
    std::uint32_t prefix;
    std::uint32_t mask;
    std::uint32_t cost;
    std::uint32_t vertex;  ///< vertex whose hop set the route inherits
  };
  std::vector<Offer> offers;
};

/// Flat-kernel SPF: computes `self`'s routing table over `lsdb` at `now`
/// into `out` (cleared first). When `valid_until` is non-null it receives
/// the earliest instant at which a live LSA crosses MaxAge (SimTime::max()
/// if none will) — the result is valid for any probe in [now, *valid_until)
/// at the same Lsdb version. Output is byte-identical to
/// `compute_routes_reference`.
void compute_routes(const Lsdb& lsdb, RouterId self, SimTime now,
                    SpfScratch& scratch, std::vector<Route>& out,
                    SimTime* valid_until = nullptr);

/// The original std::map/std::set SPF, kept verbatim as the equivalence
/// oracle. Allocates heavily; use only in tests and benchmarks.
std::vector<Route> compute_routes_reference(const Lsdb& lsdb, RouterId self,
                                            SimTime now);

/// Memoized per-router routing table: a probe is a version compare plus a
/// horizon check; only LSDB content changes or MaxAge crossings trigger a
/// recompute.
class RouteCache {
 public:
  /// The routing table at `now`. The returned reference is valid until the
  /// next get() with a changed LSDB (or expired horizon).
  const std::vector<Route>& get(const Lsdb& lsdb, RouterId self, SimTime now) {
    if (cached_version_ == lsdb.version() && now >= computed_at_ &&
        now < valid_until_) {
      return routes_;
    }
    compute_routes(lsdb, self, now, scratch_, routes_, &valid_until_);
    cached_version_ = lsdb.version();
    computed_at_ = now;
    ++recomputes_;
    return routes_;
  }

  /// Number of actual kernel runs (cache misses) so far.
  std::uint64_t recomputes() const { return recomputes_; }

 private:
  SpfScratch scratch_;
  std::vector<Route> routes_;
  std::uint64_t cached_version_ = ~std::uint64_t{0};
  SimTime computed_at_{0};
  SimTime valid_until_{0};
  std::uint64_t recomputes_ = 0;
};

}  // namespace nidkit::ospf
