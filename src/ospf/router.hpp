// The OSPFv2 protocol engine.
//
// One Router instance is the simulator's stand-in for an ospfd/bird daemon:
// it speaks the real wire format over the virtual network, runs the RFC
// 2328 state machines (interface §9, neighbor §10, flooding §13, DR
// election §9.4, SPF §16), and consults its BehaviorProfile at every
// discretionary decision point. Two Routers with different profiles are
// the paper's "different implementations of the same protocol".
//
// Implementation files:
//   router.cpp    — lifecycle, hello protocol, DR election, dispatch
//   exchange.cpp  — database description / request handling (§10.6-10.8)
//   flooding.cpp  — LSU/LSAck handling, retransmission (§13)
//   origination.cpp — self LSA origination and refresh (§12.4)
//   spf.cpp       — shortest-path-first route computation (§16)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netsim/network.hpp"
#include "ospf/config.hpp"
#include "ospf/lsdb.hpp"
#include "ospf/spf.hpp"
#include "packet/ospf_packet.hpp"
#include "util/rng.hpp"

namespace nidkit::ospf {

/// Neighbor FSM states (§10.1). Attempt is NBMA-only and not modeled.
enum class NeighborState {
  kDown = 0,
  kInit = 1,
  kTwoWay = 2,
  kExStart = 3,
  kExchange = 4,
  kLoading = 5,
  kFull = 6,
};

std::string to_string(NeighborState s);

/// Interface FSM states (§9.1). Loopback is not modeled.
enum class InterfaceState {
  kDown = 0,
  kPointToPoint = 1,
  kWaiting = 2,
  kDrOther = 3,
  kBackup = 4,
  kDr = 5,
};

std::string to_string(InterfaceState s);

/// An entry in a neighbor's link-state retransmission list: the instance
/// we flooded and are awaiting an ack for.
struct RetransmitEntry {
  LsaHeader sent_instance;
  SimTime queued_at{0};
};

/// Per-neighbor protocol state (§10).
struct Neighbor {
  RouterId id;
  Ipv4Addr address;  ///< neighbor's interface address (hello source)
  std::uint8_t priority = 1;
  NeighborState state = NeighborState::kDown;
  Ipv4Addr dr;   ///< DR as claimed in the neighbor's hellos
  Ipv4Addr bdr;  ///< BDR as claimed in the neighbor's hellos

  // Database exchange (§10.8)
  bool we_are_master = false;
  std::uint32_t dd_sequence = 0;
  bool last_rx_dbd_valid = false;
  std::uint8_t last_rx_dbd_flags = 0;
  std::uint32_t last_rx_dbd_seq = 0;
  DbdBody last_tx_dbd;  ///< retransmitted by master on timeout / slave on dup
  bool exchange_more_to_send = false;
  std::vector<LsaHeader> db_summary;  ///< headers still to advertise in DBDs

  /// LSAs we must request (link-state request list, §10.9).
  std::map<LsaKey, LsaHeader> ls_requests;
  /// Requests currently on the wire awaiting an LSU.
  std::vector<LsRequestEntry> outstanding_requests;

  /// Link-state retransmission list (§10.9).
  std::map<LsaKey, RetransmitEntry> retransmit;

  netsim::TimerHandle inactivity_timer;
  netsim::TimerHandle dbd_rxmt_timer;
  netsim::TimerHandle lsr_rxmt_timer;
  netsim::TimerHandle lsu_rxmt_timer;
};

/// Per-interface protocol state (§9).
struct OspfInterface {
  netsim::IfaceIndex index = 0;
  bool is_lan = false;
  InterfaceState state = InterfaceState::kDown;
  Ipv4Addr address;
  Ipv4Addr mask;
  Ipv4Addr dr;
  Ipv4Addr bdr;
  std::map<RouterId, Neighbor> neighbors;

  netsim::TimerHandle hello_timer;
  netsim::TimerHandle wait_timer;

  /// Delayed-ack queue: headers to acknowledge + the frame id of the LSU
  /// that triggered each (provenance for the eventual LSAck).
  std::vector<std::pair<LsaHeader, std::uint64_t>> pending_acks;
  netsim::TimerHandle ack_timer;

  /// Flood queue: LSAs queued for the next paced LSU out this interface.
  std::vector<std::pair<LsaKey, std::uint64_t>> flood_queue;
  netsim::TimerHandle flood_timer;
};

class Router {
 public:
  /// Binds the engine to `node` of `net`. Call start() to bring the
  /// protocol up. The Router registers itself as the node's receive
  /// handler; one Router per node.
  Router(netsim::Network& net, netsim::NodeId node, RouterConfig config,
         std::uint64_t seed);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Brings all interfaces up: InterfaceUp events, first hellos, router-LSA
  /// origination.
  void start();

  /// Simulates a daemon crash: all timers stop, incoming frames are
  /// ignored, nothing further is transmitted. Neighbors discover the death
  /// through their RouterDeadInterval. A stopped router cannot be
  /// restarted.
  void stop();

  // ---- Introspection (used by tests, the harness and the state prober) --
  const RouterConfig& config() const { return config_; }
  RouterId id() const { return config_.router_id; }
  const Lsdb& lsdb() const { return lsdb_; }
  const std::vector<OspfInterface>& interfaces() const { return ifaces_; }

  /// FSM state toward `neighbor`, over all interfaces (kDown if unknown).
  NeighborState neighbor_state(RouterId neighbor) const;

  /// Highest neighbor FSM state on the router, encoded as int (the trace
  /// state-prober's label). -1 when the router has no neighbors yet.
  int max_neighbor_state() const;

  /// True when the router has `expected` fully adjacent neighbors.
  bool full_adjacencies(std::size_t expected) const;

  /// SPF result over the current LSDB, memoized by LSDB content version
  /// and age-validity horizon: repeated probes between LSDB changes return
  /// the cached table without recomputing. The reference is valid until
  /// the next routes() call after an LSDB change.
  const std::vector<Route>& routes() const {
    return route_cache_.get(lsdb_, config_.router_id, now());
  }

  /// Number of actual SPF kernel runs behind routes() (cache misses).
  std::uint64_t spf_runs() const { return route_cache_.recomputes(); }

  /// Originates an AS-external LSA (the router acts as an ASBR). Used by
  /// workloads to create LSDB churn.
  void originate_external(Ipv4Addr prefix, Ipv4Addr mask,
                          std::uint32_t metric);

  /// Withdraws a previously originated external LSA by premature aging
  /// (§14.1): the instance is flooded at MaxAge and every database drops
  /// it once acknowledged. Returns false if this router never originated
  /// an external LSA for `prefix`.
  bool withdraw_external(Ipv4Addr prefix);

  /// Re-originates all self LSAs immediately with bumped sequence numbers
  /// (simulates a triggered topology change).
  void bump_self_lsas();

  struct Stats {
    std::uint64_t tx_by_type[kNumPacketTypes + 1] = {};
    std::uint64_t rx_by_type[kNumPacketTypes + 1] = {};
    std::uint64_t lsa_installs = 0;
    std::uint64_t lsa_refreshes = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicates_received = 0;
    std::uint64_t stale_received = 0;
    std::uint64_t decode_failures = 0;
    std::uint64_t auth_failures = 0;
    /// Neighbor FSM state changes (any `state` reassignment to a new value).
    std::uint64_t fsm_transitions = 0;
    /// Behavioral coverage masks (cov subsystem): bit from*8+to set for
    /// every neighbor FSM edge taken; bit = InterfaceState value for every
    /// DR-election role this router's interfaces settled into.
    std::uint64_t fsm_edge_mask = 0;
    std::uint64_t dr_role_mask = 0;
    /// LSA lifecycle events: fresh self-originations and MaxAge removals
    /// (refreshes already have their own counter above).
    std::uint64_t self_originations = 0;
    std::uint64_t maxage_flushes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend struct RouterTestPeer;  // white-box test access

  // -- router.cpp: lifecycle, hello, election, dispatch
  void on_frame(netsim::IfaceIndex iface, const netsim::Frame& frame);
  void interface_up(OspfInterface& oi);
  void send_hello(OspfInterface& oi, std::uint64_t cause);
  void arm_hello_timer(OspfInterface& oi);
  void handle_hello(OspfInterface& oi, const OspfPacket& pkt,
                    const HelloBody& hello, Ipv4Addr src);
  void neighbor_inactivity(OspfInterface& oi, RouterId nbr);
  void run_dr_election(OspfInterface& oi);
  void check_adjacencies(OspfInterface& oi);
  bool should_be_adjacent(const OspfInterface& oi, const Neighbor& n) const;
  void start_adjacency(OspfInterface& oi, Neighbor& n);
  void destroy_neighbor(OspfInterface& oi, Neighbor& n);
  /// All neighbor FSM transitions funnel through here so stats count them.
  void set_neighbor_state(Neighbor& n, NeighborState to);
  void send_packet(OspfInterface& oi, PacketBody body, Ipv4Addr dst,
                   std::uint64_t cause);

  // -- exchange.cpp: §10.6-10.8
  void handle_dbd(OspfInterface& oi, Neighbor& n, const DbdBody& dbd);
  void handle_lsr(OspfInterface& oi, Neighbor& n, const LsRequestBody& lsr);
  void send_dbd(OspfInterface& oi, Neighbor& n, bool retransmit);
  void process_dbd_headers(OspfInterface& oi, Neighbor& n, const DbdBody& dbd);
  void exchange_done(OspfInterface& oi, Neighbor& n);
  void send_ls_requests(OspfInterface& oi, Neighbor& n);
  void seq_number_mismatch(OspfInterface& oi, Neighbor& n);
  void arm_dbd_rxmt(OspfInterface& oi, Neighbor& n);
  void loading_check(OspfInterface& oi, Neighbor& n);
  void neighbor_full(OspfInterface& oi, Neighbor& n);

  // -- flooding.cpp: §13
  void handle_lsu(OspfInterface& oi, Neighbor& n, const LsUpdateBody& lsu,
                  std::uint64_t frame_id);
  void handle_lsack(OspfInterface& oi, Neighbor& n, const LsAckBody& ack);
  void install_and_flood(OspfInterface& from, Neighbor& n, const Lsa& lsa,
                         std::uint64_t frame_id);
  /// Floods the current database copy of `key` (§13.3). `except` is the
  /// interface the LSA arrived on (nullptr for self-originations);
  /// `from` is the neighbor it arrived from — that neighbor already has
  /// the LSA and is never put on a retransmission list (step 1c).
  void flood(const LsaKey& key, const OspfInterface* except,
             std::uint64_t cause, RouterId from = RouterId{});
  void queue_flood(OspfInterface& oi, const LsaKey& key, std::uint64_t cause);
  void flush_flood_queue(OspfInterface& oi);
  void queue_delayed_ack(OspfInterface& oi, const LsaHeader& header,
                         std::uint64_t frame_id);
  void send_direct_ack(OspfInterface& oi, const Neighbor& n,
                       std::vector<LsaHeader> headers, std::uint64_t frame_id);
  void flush_delayed_acks(OspfInterface& oi);
  LsaHeader ack_header_for(const Lsa& received) const;
  void arm_lsu_rxmt(OspfInterface& oi, Neighbor& n);
  void lsu_retransmit(OspfInterface& oi, Neighbor& n);

  // -- origination.cpp: §12.4
  void originate_router_lsa();
  void originate_network_lsa(OspfInterface& oi);
  void schedule_refresh(const LsaKey& key);
  void refresh_lsa(const LsaKey& key);
  void self_originate(Lsa lsa, std::uint64_t cause);
  std::int32_t next_seq_for(const LsaKey& key) const;
  /// Removes a MaxAge LSA from the database once no neighbor's
  /// retransmission list still carries it (§14).
  void schedule_maxage_cleanup(const LsaKey& key);
  /// MinLSInterval rate limiting: returns false (and schedules `retry`)
  /// when `key` was originated too recently.
  bool origination_allowed(const LsaKey& key, std::function<void()> retry);

  OspfInterface* iface_by_index(netsim::IfaceIndex index);
  Neighbor* find_neighbor_by_address(OspfInterface& oi, Ipv4Addr addr);
  bool is_dr_or_bdr(const OspfInterface& oi) const;
  SimTime now() const { return net_.sim().now(); }

  netsim::Network& net_;
  netsim::NodeId node_;
  RouterConfig config_;
  Rng rng_;
  Lsdb lsdb_;
  std::vector<OspfInterface> ifaces_;
  std::map<LsaKey, netsim::TimerHandle> refresh_timers_;
  std::map<LsaKey, SimTime> last_origination_;
  std::map<LsaKey, netsim::TimerHandle> pending_origination_;
  bool is_asbr_ = false;
  std::uint32_t dd_seq_counter_;
  /// Frame id of the packet currently being processed (provenance source).
  std::uint64_t current_cause_ = 0;
  std::uint32_t external_counter_ = 0;
  /// Cryptographic-auth sequence number for our own transmissions (§D.4.3)
  /// and the highest sequence accepted per sender (anti-replay).
  std::uint32_t crypto_seq_ = 0;
  std::map<RouterId, std::uint32_t> crypto_seq_seen_;
  /// Memoized SPF output (routes() is const; the cache is bookkeeping).
  mutable RouteCache route_cache_;
  Stats stats_;
  bool started_ = false;
};

}  // namespace nidkit::ospf
