// The flooding procedure (§13): receiving Link State Updates, reflooding,
// acknowledgments (direct, delayed, implied) and retransmission.
//
// This file is where most of the paper's observable implementation
// differences live: ack batching vs direct acks, ack headers copied from
// the wire vs from the database, and stale-LSA responses all shape which
// packet causal relationships a black-box observer can mine.
#include <algorithm>

#include "ospf/router.hpp"
#include "util/log.hpp"

namespace nidkit::ospf {

LsaHeader Router::ack_header_for(const Lsa& received) const {
  if (config_.profile.ack_from_database) {
    // BIRD-like: acknowledge with our database copy's header. When we hold
    // a newer instance than the one just received, the ack carries a
    // *greater* LS sequence number than the acknowledged update — the
    // behaviour behind the paper's Table 2 discrepancy.
    const auto* entry = lsdb_.find(key_of(received.header));
    if (entry != nullptr) {
      LsaHeader h = entry->lsa.header;
      h.age = lsdb_.age_at(*entry, now());
      return h;
    }
  }
  return received.header;
}

void Router::handle_lsu(OspfInterface& oi, Neighbor& n,
                        const LsUpdateBody& lsu, std::uint64_t frame_id) {
  if (n.state < NeighborState::kExchange) return;

  std::vector<LsaHeader> direct_acks;
  bool requests_satisfied = false;

  for (const Lsa& lsa : lsu.lsas) {
    const LsaKey key = key_of(lsa.header);

    // §13 step 4: a MaxAge LSA we do not have, with no exchange under way,
    // is acknowledged and dropped without installation.
    if (lsa.header.age >= kMaxAgeSeconds && lsdb_.find(key) == nullptr) {
      bool exchanging = false;
      for (const auto& oi2 : ifaces_)
        for (const auto& [id, nb] : oi2.neighbors)
          if (nb.state == NeighborState::kExchange ||
              nb.state == NeighborState::kLoading)
            exchanging = true;
      if (!exchanging) {
        direct_acks.push_back(lsa.header);
        continue;
      }
    }

    // Does this LSA satisfy an outstanding request?
    auto req = n.ls_requests.find(key);
    if (req != n.ls_requests.end() &&
        compare_instances(lsa.header, req->second) >= 0) {
      n.ls_requests.erase(req);
      std::erase_if(n.outstanding_requests, [&key](const LsRequestEntry& e) {
        return LsaKey{e.type, e.link_state_id, e.advertising_router} == key;
      });
      requests_satisfied = true;
    }

    const auto* db = lsdb_.find(key);
    LsaHeader db_header;
    int cmp = 1;  // no database copy => received is newer
    if (db != nullptr) {
      db_header = db->lsa.header;
      db_header.age = lsdb_.age_at(*db, now());
      cmp = compare_instances(lsa.header, db_header);
    }

    if (cmp > 0) {
      // ---- Received instance is newer: install and flood (§13 step 5).
      if (db != nullptr &&
          now() - db->last_accepted_at < config_.profile.min_ls_arrival) {
        // Arriving too frequently (MinLSArrival): discard without ack.
        continue;
      }
      // Remove the superseded instance from all retransmission lists.
      for (auto& oi2 : ifaces_)
        for (auto& [id, nb] : oi2.neighbors) nb.retransmit.erase(key);

      const bool self_originated =
          lsa.header.advertising_router == config_.router_id;

      lsdb_.install(lsa, now());
      ++stats_.lsa_installs;

      if (self_originated) {
        // §13.4: someone floods a newer instance of our own LSA back at
        // us. Advance past it and re-originate — this bumps our sequence
        // number and floods an LSU with a greater LS-SN.
        refresh_lsa(key);
        continue;
      }

      // A MaxAge instance is a withdrawal: it is flooded and acknowledged
      // like any instance, then leaves the database once off every
      // retransmission list.
      if (lsa.header.age >= kMaxAgeSeconds) schedule_maxage_cleanup(key);

      const bool flooded_back = [&] {
        flood(key, &oi, frame_id, n.id);
        // flood() queues; "flooded back" means the receiving interface was
        // among the outgoing ones, which on a LAN only happens if we are
        // DR. Point-to-point never refloods to its only peer (the sender).
        return oi.is_lan && oi.state == InterfaceState::kDr;
      }();

      if (!flooded_back) {
        if (config_.profile.delayed_ack_delay.count() > 0) {
          queue_delayed_ack(oi, ack_header_for(lsa), frame_id);
        } else {
          direct_acks.push_back(ack_header_for(lsa));
        }
      }
    } else if (cmp == 0) {
      // ---- Duplicate (§13 step 7).
      ++stats_.duplicates_received;
      auto rx = n.retransmit.find(key);
      if (rx != n.retransmit.end()) {
        // Implied acknowledgment: the neighbor flooded the same instance
        // back to us — it clearly has it.
        n.retransmit.erase(rx);
        if (n.retransmit.empty()) n.lsu_rxmt_timer.cancel();
      } else if (config_.profile.direct_ack_duplicates) {
        direct_acks.push_back(ack_header_for(lsa));
      } else {
        queue_delayed_ack(oi, ack_header_for(lsa), frame_id);
      }
    } else {
      // ---- Received instance is older than ours (§13 step 8).
      ++stats_.stale_received;
      if (db_header.age >= kMaxAgeSeconds &&
          db_header.seq == kMaxSequenceNumber)
        continue;  // wrap-around in progress
      if (config_.profile.ack_stale_from_database && db != nullptr) {
        // Acknowledge with our (newer) database header; the sender sees
        // Snd(LSU) -> Rcv(LSAck with greater LS-SN) and is expected to
        // catch up through normal flooding.
        LsaHeader h = db_header;
        if (config_.profile.delayed_ack_delay.count() > 0) {
          queue_delayed_ack(oi, h, frame_id);
        } else {
          direct_acks.push_back(h);
        }
      } else if (config_.profile.respond_stale_with_newer && db != nullptr) {
        // Send our newer copy straight back (no ack, no retransmission
        // entry). The stale sender observes: Snd(LSU) -> Rcv(LSU with
        // greater LS-SN).
        LsUpdateBody reply;
        reply.lsas.push_back(lsdb_.snapshot(*db, now()));
        send_packet(oi, std::move(reply), n.address, frame_id);
      }
    }
  }

  // All direct acks for one received update go out as a single LSAck
  // packet, as real daemons do.
  if (!direct_acks.empty())
    send_direct_ack(oi, n, std::move(direct_acks), frame_id);
  if (requests_satisfied) {
    if (n.outstanding_requests.empty()) {
      n.lsr_rxmt_timer.cancel();
      if (!n.ls_requests.empty()) {
        send_ls_requests(oi, n);
      } else {
        loading_check(oi, n);
      }
    }
  }
}

void Router::handle_lsack(OspfInterface& oi, Neighbor& n,
                          const LsAckBody& ack) {
  (void)oi;
  if (n.state < NeighborState::kExchange) return;
  for (const auto& h : ack.lsa_headers) {
    auto it = n.retransmit.find(key_of(h));
    if (it == n.retransmit.end()) continue;  // ack for nothing we sent — ignore
    // Accept the ack if it covers the instance we sent (or a newer one the
    // neighbor learned meanwhile).
    if (compare_instances(h, it->second.sent_instance) >= 0) {
      n.retransmit.erase(it);
      if (n.retransmit.empty()) n.lsu_rxmt_timer.cancel();
    }
  }
}

void Router::flood(const LsaKey& key, const OspfInterface* except,
                   std::uint64_t cause, RouterId from) {
  const auto* entry = lsdb_.find(key);
  if (entry == nullptr) return;
  const LsaHeader current = entry->lsa.header;

  for (auto& oi : ifaces_) {
    bool anyone_needs_it = false;
    for (auto& [id, nb] : oi.neighbors) {
      if (nb.state < NeighborState::kExchange) continue;
      // §13.3 step 1c: the neighbor the LSA came from already has it.
      if (!from.is_zero() && id == from) continue;
      // §13.3 step 1: neighbors still waiting for this LSA via the request
      // mechanism do not also get it via flooding.
      auto req = nb.ls_requests.find(key);
      if (req != nb.ls_requests.end()) {
        if (compare_instances(current, req->second) <= 0) continue;
        // Our instance is newer than the requested one; flood it and drop
        // the stale request.
        nb.ls_requests.erase(req);
      }
      nb.retransmit[key] = RetransmitEntry{current, now()};
      arm_lsu_rxmt(oi, nb);
      anyone_needs_it = true;
    }
    if (!anyone_needs_it) continue;

    if (&oi == except) {
      // Reflooding out the receiving interface (§13.3 step 4) happens only
      // when we are the DR of that network; a point-to-point link's only
      // neighbor is the sender itself.
      if (!(oi.is_lan && oi.state == InterfaceState::kDr)) continue;
    }
    queue_flood(oi, key, cause);
  }
}

void Router::queue_flood(OspfInterface& oi, const LsaKey& key,
                         std::uint64_t cause) {
  oi.flood_queue.emplace_back(key, cause);
  if (oi.flood_queue.size() > 1) return;  // timer already pending
  const SimDuration pacing = config_.profile.flood_pacing;
  if (pacing.count() <= 0) {
    flush_flood_queue(oi);
    return;
  }
  oi.flood_timer.cancel();
  oi.flood_timer =
      net_.sim().schedule(pacing, [this, &oi] { flush_flood_queue(oi); });
}

void Router::flush_flood_queue(OspfInterface& oi) {
  while (!oi.flood_queue.empty()) {
    LsUpdateBody lsu;
    std::uint64_t cause = 0;
    std::vector<LsaKey> seen;
    std::size_t taken = 0;
    for (const auto& [key, c] : oi.flood_queue) {
      if (lsu.lsas.size() >= config_.profile.lsu_max_lsas) break;
      ++taken;
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(key);
      const auto* entry = lsdb_.find(key);
      if (entry == nullptr) continue;  // flushed meanwhile
      if (cause == 0) cause = c;
      lsu.lsas.push_back(lsdb_.snapshot(*entry, now()));
    }
    oi.flood_queue.erase(oi.flood_queue.begin(),
                         oi.flood_queue.begin() + taken);
    if (lsu.lsas.empty()) continue;

    Ipv4Addr dst = kAllSpfRouters;
    if (oi.is_lan && oi.state != InterfaceState::kDr &&
        oi.state != InterfaceState::kBackup) {
      dst = kAllDRouters;  // DRother floods toward the DR/BDR only
    }
    send_packet(oi, std::move(lsu), dst, cause);
  }
}

void Router::queue_delayed_ack(OspfInterface& oi, const LsaHeader& header,
                               std::uint64_t frame_id) {
  oi.pending_acks.emplace_back(header, frame_id);
  if (oi.pending_acks.size() > 1) return;  // timer already pending
  oi.ack_timer.cancel();
  oi.ack_timer = net_.sim().schedule(config_.profile.delayed_ack_delay,
                                     [this, &oi] { flush_delayed_acks(oi); });
}

void Router::flush_delayed_acks(OspfInterface& oi) {
  if (oi.pending_acks.empty()) return;
  LsAckBody body;
  const std::uint64_t cause = oi.pending_acks.front().second;
  for (const auto& [h, c] : oi.pending_acks) {
    if (config_.profile.ack_from_database) {
      // Database-sourced acks are resolved at flush time: if a newer
      // instance arrived while the ack sat in the queue, the ack carries
      // the newer header (greater LS-SN than the acknowledged update).
      const auto* entry = lsdb_.find(key_of(h));
      if (entry != nullptr) {
        LsaHeader fresh = entry->lsa.header;
        fresh.age = lsdb_.age_at(*entry, now());
        body.lsa_headers.push_back(fresh);
        continue;
      }
    }
    body.lsa_headers.push_back(h);
  }
  oi.pending_acks.clear();

  Ipv4Addr dst = kAllSpfRouters;
  if (oi.is_lan && oi.state != InterfaceState::kDr &&
      oi.state != InterfaceState::kBackup) {
    dst = kAllDRouters;
  }
  send_packet(oi, std::move(body), dst, cause);
}

void Router::send_direct_ack(OspfInterface& oi, const Neighbor& n,
                             std::vector<LsaHeader> headers,
                             std::uint64_t frame_id) {
  LsAckBody body;
  body.lsa_headers = std::move(headers);
  send_packet(oi, std::move(body), n.address, frame_id);
}

void Router::arm_lsu_rxmt(OspfInterface& oi, Neighbor& n) {
  n.lsu_rxmt_timer.cancel();
  n.lsu_rxmt_timer = net_.sim().schedule(config_.profile.rxmt_interval,
                                         [this, &oi, &n] {
                                           lsu_retransmit(oi, n);
                                         });
}

void Router::lsu_retransmit(OspfInterface& oi, Neighbor& n) {
  if (n.state < NeighborState::kExchange || n.retransmit.empty()) return;
  LsUpdateBody lsu;
  std::vector<LsaKey> dead;
  for (const auto& [key, entry] : n.retransmit) {
    if (lsu.lsas.size() >= config_.profile.lsu_max_lsas) break;
    const auto* db = lsdb_.find(key);
    if (db == nullptr) {
      dead.push_back(key);
      continue;
    }
    // Retransmit the *current* database copy; if the LSA was refreshed
    // since the original flood, the retransmission carries the newer
    // instance (and the list entry is updated to match).
    lsu.lsas.push_back(lsdb_.snapshot(*db, now()));
    n.retransmit[key].sent_instance = lsu.lsas.back().header;
  }
  for (const auto& key : dead) n.retransmit.erase(key);
  if (!lsu.lsas.empty()) {
    ++stats_.retransmissions;
    // Retransmissions are always unicast to the lagging neighbor (§13.6)
    // and are timer-driven (no provenance).
    send_packet(oi, std::move(lsu), n.address, /*cause=*/0);
  }
  if (!n.retransmit.empty()) arm_lsu_rxmt(oi, n);
}

}  // namespace nidkit::ospf
