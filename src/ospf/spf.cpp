// Shortest-path-first route computation (§16), single area, with
// equal-cost multipath.
//
// The routing table is not needed for causal mining, but it is what the
// protocol exists to produce — tests assert on it to prove that both
// behaviour profiles converge to identical routes (the implementations are
// interoperable at the *routing* level even where their packet-level
// behaviours differ).
#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "ospf/router.hpp"

namespace nidkit::ospf {

namespace {

/// SPF vertex: a router (type=Router LSA) or a transit network
/// (type=Network LSA, keyed by the DR's interface address).
struct Vertex {
  bool is_network = false;
  Ipv4Addr id;  ///< router id, or DR interface address for networks

  friend auto operator<=>(const Vertex&, const Vertex&) = default;
};

using HopSet = std::set<RouterId>;

}  // namespace

std::vector<Route> Router::compute_spf() const {
  // Collect the current router/network LSAs.
  std::map<Ipv4Addr, const RouterLsaBody*> routers;
  std::map<Ipv4Addr, const NetworkLsaBody*> networks;  // by DR address
  std::map<Ipv4Addr, const ExternalLsaBody*> externals;
  std::map<Ipv4Addr, RouterId> external_origin;
  lsdb_.for_each([&](const LsaKey& key, const Lsdb::Entry& entry) {
    if (lsdb_.age_at(entry, now()) >= kMaxAgeSeconds) return;
    switch (key.type) {
      case LsaType::kRouter:
        routers[key.link_state_id] =
            std::get_if<RouterLsaBody>(&entry.lsa.body);
        break;
      case LsaType::kNetwork:
        networks[key.link_state_id] =
            std::get_if<NetworkLsaBody>(&entry.lsa.body);
        break;
      case LsaType::kExternal:
        externals[key.link_state_id] =
            std::get_if<ExternalLsaBody>(&entry.lsa.body);
        external_origin[key.link_state_id] = key.advertising_router;
        break;
      default:
        break;
    }
  });

  const Vertex self{false, Ipv4Addr{config_.router_id.value()}};
  if (routers.find(self.id) == routers.end()) return {};

  // Dijkstra over the bidirectionally-verified LSA graph, accumulating
  // the set of equal-cost first hops per vertex.
  std::map<Vertex, std::uint32_t> dist;
  std::map<Vertex, HopSet> first_hops;
  using QEntry = std::pair<std::uint32_t, Vertex>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  dist[self] = 0;
  pq.push({0, self});
  std::set<Vertex> done;

  // Does `router`'s LSA link back to vertex `v`?
  auto links_back = [&](Ipv4Addr router, const Vertex& v) {
    auto it = routers.find(router);
    if (it == routers.end() || it->second == nullptr) return false;
    for (const auto& l : it->second->links) {
      if (v.is_network && l.type == RouterLinkType::kTransit &&
          l.link_id == v.id)
        return true;
      if (!v.is_network && l.type == RouterLinkType::kPointToPoint &&
          l.link_id == v.id)
        return true;
    }
    return false;
  };

  // First hops toward a vertex reached from `from` via router `to_router`:
  // inherited from `from`, except that self's direct successors are their
  // own first hop.
  auto hops_via = [&](const Vertex& from, RouterId to_router) -> HopSet {
    if (from == self) return HopSet{to_router};
    auto it = first_hops.find(from);
    return it == first_hops.end() ? HopSet{to_router} : it->second;
  };

  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (done.count(v)) continue;
    done.insert(v);

    auto relax = [&](const Vertex& to, std::uint32_t cost,
                     const HopSet& hops) {
      auto it = dist.find(to);
      if (it == dist.end() || d + cost < it->second) {
        dist[to] = d + cost;
        first_hops[to] = hops;
        pq.push({d + cost, to});
      } else if (d + cost == it->second) {
        // Equal-cost path: merge the next-hop sets (ECMP).
        first_hops[to].insert(hops.begin(), hops.end());
      }
    };

    if (!v.is_network) {
      auto rit = routers.find(v.id);
      if (rit == routers.end() || rit->second == nullptr) continue;
      for (const auto& l : rit->second->links) {
        if (l.type == RouterLinkType::kPointToPoint) {
          const Vertex to{false, l.link_id};
          // Bidirectional check: the neighbor must link back to us.
          if (!links_back(l.link_id, v)) continue;
          relax(to, l.metric, hops_via(v, RouterId{l.link_id.value()}));
        } else if (l.type == RouterLinkType::kTransit) {
          const Vertex to{true, l.link_id};
          auto nit = networks.find(l.link_id);
          if (nit == networks.end() || nit->second == nullptr) continue;
          relax(to, l.metric,
                v == self ? HopSet{} : first_hops[v]);
        }
      }
    } else {
      auto nit = networks.find(v.id);
      if (nit == networks.end() || nit->second == nullptr) continue;
      for (const auto& attached : nit->second->attached_routers) {
        const Vertex to{false, Ipv4Addr{attached.value()}};
        if (!links_back(Ipv4Addr{attached.value()}, v)) continue;
        // Network-to-router edges cost 0 (§16.1). Crossing the LAN from
        // self makes the attached router the first hop.
        auto it = first_hops.find(v);
        const HopSet hops = (it == first_hops.end() || it->second.empty())
                                ? HopSet{attached}
                                : it->second;
        relax(to, 0, hops);
      }
    }
  }

  // Routes: transit networks, stub prefixes, and externals via their ASBR.
  std::map<std::pair<std::uint32_t, std::uint32_t>, Route> best;
  auto offer = [&](Route r) {
    const auto key = std::make_pair(r.prefix.value(), r.mask.value());
    auto it = best.find(key);
    if (it == best.end() || r.cost < it->second.cost) {
      best[key] = std::move(r);
    } else if (r.cost == it->second.cost) {
      // Same destination at the same cost via a different part of the
      // graph: merge next hops.
      auto& hops = it->second.next_hops;
      for (const auto& h : r.next_hops)
        if (std::find(hops.begin(), hops.end(), h) == hops.end())
          hops.push_back(h);
      std::sort(hops.begin(), hops.end());
      it->second.via = hops.empty() ? RouterId{} : hops.front();
    }
  };

  auto route_for = [&](const Vertex& v, Ipv4Addr prefix, Ipv4Addr mask,
                       std::uint32_t cost) {
    Route r;
    r.prefix = prefix;
    r.mask = mask;
    r.cost = cost;
    if (!(v == self)) {
      const auto& hops = first_hops[v];
      r.next_hops.assign(hops.begin(), hops.end());
      r.via = r.next_hops.empty() ? RouterId{} : r.next_hops.front();
    }
    return r;
  };

  for (const auto& [v, d] : dist) {
    if (v.is_network) {
      auto nit = networks.find(v.id);
      if (nit == networks.end() || nit->second == nullptr) continue;
      const auto mask = nit->second->network_mask;
      offer(route_for(v, Ipv4Addr{v.id.value() & mask.value()}, mask, d));
    } else {
      auto rit = routers.find(v.id);
      if (rit == routers.end() || rit->second == nullptr) continue;
      for (const auto& l : rit->second->links) {
        if (l.type != RouterLinkType::kStub) continue;
        offer(route_for(v, l.link_id, l.link_data, d + l.metric));
      }
    }
  }
  for (const auto& [prefix, ext] : externals) {
    if (ext == nullptr) continue;
    const Vertex asbr{false, Ipv4Addr{external_origin[prefix].value()}};
    auto it = dist.find(asbr);
    if (it == dist.end()) continue;
    offer(route_for(asbr, prefix, ext->network_mask,
                    it->second + ext->metric));
  }

  std::vector<Route> out;
  out.reserve(best.size());
  for (auto& [key, r] : best) out.push_back(std::move(r));
  return out;
}

}  // namespace nidkit::ospf
