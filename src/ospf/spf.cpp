// Shortest-path-first route computation (§16), single area, with
// equal-cost multipath.
//
// The routing table is not needed for causal mining, but it is what the
// protocol exists to produce — tests assert on it to prove that both
// behaviour profiles converge to identical routes (the implementations are
// interoperable at the *routing* level even where their packet-level
// behaviours differ).
//
// Two implementations live here:
//
//   * compute_routes — the flat kernel (see spf.hpp). Vertices are dense
//     indices assigned in (is_network, id) order, which is exactly the
//     reference's Vertex ordering, so the binary heap pops equal-cost
//     candidates in the same sequence and ECMP hop propagation matches
//     bit for bit.
//   * compute_routes_reference — the original std::map/std::set version,
//     retained as the oracle for the equivalence property suite.
#include "ospf/spf.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

namespace nidkit::ospf {

namespace {

using HopSet = SpfScratch::HopSet;

/// Inserts `x` into the sorted-unique set `h` (no-op when present).
void insert_sorted(HopSet& h, RouterId x) {
  RouterId* pos = std::lower_bound(h.begin(), h.end(), x);
  if (pos != h.end() && *pos == x) return;
  const std::size_t at = static_cast<std::size_t>(pos - h.begin());
  h.push_back(x);  // may reallocate; recompute the insertion point
  std::rotate(h.begin() + at, h.end() - 1, h.end());
}

/// Replaces `h` with the `n` sorted-unique elements at `src`.
void assign_hops(HopSet& h, const RouterId* src, std::size_t n) {
  h.clear();
  h.reserve(n);
  for (std::size_t i = 0; i < n; ++i) h.push_back(src[i]);
}

/// Does the router LSA `body` link back to the vertex (`is_network`, `id`)?
bool links_back(const RouterLsaBody* body, bool is_network, Ipv4Addr id) {
  if (body == nullptr) return false;
  for (const auto& l : body->links) {
    if (is_network && l.type == RouterLinkType::kTransit && l.link_id == id)
      return true;
    if (!is_network && l.type == RouterLinkType::kPointToPoint &&
        l.link_id == id)
      return true;
  }
  return false;
}

}  // namespace

void compute_routes(const Lsdb& lsdb, RouterId self, SimTime now,
                    SpfScratch& s, std::vector<Route>& out,
                    SimTime* valid_until) {
  out.clear();
  s.routers.clear();
  s.networks.clear();
  s.externals.clear();
  s.offers.clear();
  s.heap.clear();

  // ---- Collection: deduplicate the typed index into flat slot arrays.
  //
  // The index is in LsaKey order, so entries sharing a link-state id are
  // adjacent and ordered by advertising router; the last *live* one wins —
  // the same outcome as the reference's map-overwrite with MaxAge entries
  // skipped. A wrong-variant body stores nullptr and acts as absent
  // downstream, again matching the reference.
  //
  // The validity horizon is the earliest instant any live LSA crosses
  // MaxAge: age_at() truncates to whole seconds, so entry `e` flips exactly
  // at installed_at + seconds(kMaxAgeSeconds - header.age).
  SimTime horizon = SimTime::max();
  const auto live = [&](const Lsdb::Entry& e) {
    if (lsdb.age_at(e, now) >= kMaxAgeSeconds) return false;
    const SimTime flip =
        e.installed_at +
        std::chrono::seconds(kMaxAgeSeconds - e.lsa.header.age);
    horizon = std::min(horizon, flip);
    return true;
  };

  const Lsdb::TypedIndex& idx = lsdb.typed_index();
  for (const auto& [id, entry] : idx.routers) {
    if (!live(*entry)) continue;
    const auto* body = std::get_if<RouterLsaBody>(&entry->lsa.body);
    if (!s.routers.empty() && s.routers.back().id == id)
      s.routers.back().body = body;
    else
      s.routers.push_back({id, body});
  }
  for (const auto& [id, entry] : idx.networks) {
    if (!live(*entry)) continue;
    const auto* body = std::get_if<NetworkLsaBody>(&entry->lsa.body);
    if (!s.networks.empty() && s.networks.back().id == id)
      s.networks.back().body = body;
    else
      s.networks.push_back({id, body});
  }
  for (const auto& ref : idx.externals) {
    if (!live(*ref.entry)) continue;
    const auto* body = std::get_if<ExternalLsaBody>(&ref.entry->lsa.body);
    if (!s.externals.empty() && s.externals.back().prefix == ref.prefix) {
      s.externals.back().origin = ref.origin;
      s.externals.back().body = body;
    } else {
      s.externals.push_back({ref.prefix, ref.origin, body});
    }
  }
  if (valid_until != nullptr) *valid_until = horizon;

  // Id → vertex index lookups over the sorted slot arrays.
  const std::uint32_t R = static_cast<std::uint32_t>(s.routers.size());
  const std::uint32_t V = R + static_cast<std::uint32_t>(s.networks.size());
  const auto router_index = [&](Ipv4Addr id) -> std::int64_t {
    auto it = std::lower_bound(
        s.routers.begin(), s.routers.end(), id,
        [](const SpfScratch::RouterSlot& a, Ipv4Addr b) { return a.id < b; });
    if (it == s.routers.end() || it->id != id) return -1;
    return it - s.routers.begin();
  };
  const auto network_index = [&](Ipv4Addr id) -> std::int64_t {
    auto it = std::lower_bound(
        s.networks.begin(), s.networks.end(), id,
        [](const SpfScratch::NetworkSlot& a, Ipv4Addr b) { return a.id < b; });
    if (it == s.networks.end() || it->id != id) return -1;
    return it - s.networks.begin();
  };

  const std::int64_t self_slot = router_index(Ipv4Addr{self.value()});
  if (self_slot < 0) return;
  const std::uint32_t self_idx = static_cast<std::uint32_t>(self_slot);

  // ---- Dijkstra over dense vertex indices.
  s.dist.assign(V, 0);
  s.reached.assign(V, 0);
  s.done.assign(V, 0);
  if (s.hops.size() < V) s.hops.resize(V);
  for (std::uint32_t i = 0; i < V; ++i) s.hops[i].clear();

  const auto relax = [&](std::uint32_t to, std::uint32_t nd,
                         const RouterId* hp, std::size_t hn) {
    if (!s.reached[to] || nd < s.dist[to]) {
      s.reached[to] = 1;
      s.dist[to] = nd;
      assign_hops(s.hops[to], hp, hn);
      s.heap.push_back((std::uint64_t{nd} << 32) | to);
      std::push_heap(s.heap.begin(), s.heap.end(),
                     std::greater<std::uint64_t>{});
    } else if (nd == s.dist[to]) {
      // Equal-cost path: merge the next-hop sets (ECMP).
      for (std::size_t i = 0; i < hn; ++i) insert_sorted(s.hops[to], hp[i]);
    }
  };

  s.reached[self_idx] = 1;
  s.dist[self_idx] = 0;
  s.heap.push_back(self_idx);

  while (!s.heap.empty()) {
    std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<std::uint64_t>{});
    const std::uint64_t word = s.heap.back();
    s.heap.pop_back();
    const std::uint32_t v = static_cast<std::uint32_t>(word & 0xffffffffu);
    const std::uint32_t d = static_cast<std::uint32_t>(word >> 32);
    if (s.done[v]) continue;
    s.done[v] = 1;

    if (v < R) {
      const RouterLsaBody* body = s.routers[v].body;
      if (body == nullptr) continue;
      const Ipv4Addr vid = s.routers[v].id;
      for (const auto& l : body->links) {
        if (l.type == RouterLinkType::kPointToPoint) {
          const std::int64_t to = router_index(l.link_id);
          // Bidirectional check: the neighbor must link back to us.
          if (to < 0 || !links_back(s.routers[to].body, false, vid)) continue;
          // Self's direct successors are their own first hop; everything
          // beyond inherits our first hops.
          const RouterId hop{l.link_id.value()};
          const HopSet& inherited = s.hops[v];
          if (v == self_idx)
            relax(static_cast<std::uint32_t>(to), d + l.metric, &hop, 1);
          else
            relax(static_cast<std::uint32_t>(to), d + l.metric,
                  inherited.data(), inherited.size());
        } else if (l.type == RouterLinkType::kTransit) {
          const std::int64_t to = network_index(l.link_id);
          if (to < 0 || s.networks[to].body == nullptr) continue;
          const HopSet& inherited = s.hops[v];
          relax(R + static_cast<std::uint32_t>(to), d + l.metric,
                v == self_idx ? nullptr : inherited.data(),
                v == self_idx ? 0 : inherited.size());
        }
      }
    } else {
      const SpfScratch::NetworkSlot& net = s.networks[v - R];
      if (net.body == nullptr) continue;
      for (const auto& attached : net.body->attached_routers) {
        const std::int64_t to = router_index(Ipv4Addr{attached.value()});
        if (to < 0 || !links_back(s.routers[to].body, true, net.id)) continue;
        // Network-to-router edges cost 0 (§16.1). Crossing the LAN from
        // self makes the attached router the first hop.
        const HopSet& inherited = s.hops[v];
        if (inherited.empty())
          relax(static_cast<std::uint32_t>(to), d, &attached, 1);
        else
          relax(static_cast<std::uint32_t>(to), d, inherited.data(),
                inherited.size());
      }
    }
  }

  // ---- Route assembly: transit networks, stub prefixes, and externals
  // via their ASBR. Offers are gathered flat, sorted by (prefix, mask,
  // cost), and merged per group — min cost wins, equal-cost offers union
  // their next hops. The union is order-independent, so this matches the
  // reference's incremental map merge exactly.
  const auto offer = [&](Ipv4Addr prefix, Ipv4Addr mask, std::uint32_t cost,
                         std::uint32_t vertex) {
    s.offers.push_back({prefix.value(), mask.value(), cost, vertex});
  };

  for (std::uint32_t v = 0; v < V; ++v) {
    if (!s.reached[v]) continue;
    if (v < R) {
      const RouterLsaBody* body = s.routers[v].body;
      if (body == nullptr) continue;
      for (const auto& l : body->links) {
        if (l.type != RouterLinkType::kStub) continue;
        offer(l.link_id, l.link_data, s.dist[v] + l.metric, v);
      }
    } else {
      const SpfScratch::NetworkSlot& net = s.networks[v - R];
      if (net.body == nullptr) continue;
      const auto mask = net.body->network_mask;
      offer(Ipv4Addr{net.id.value() & mask.value()}, mask, s.dist[v], v);
    }
  }
  for (const auto& ext : s.externals) {
    if (ext.body == nullptr) continue;
    const std::int64_t asbr = router_index(Ipv4Addr{ext.origin.value()});
    if (asbr < 0 || !s.reached[asbr]) continue;
    offer(ext.prefix, ext.body->network_mask,
          s.dist[asbr] + ext.body->metric, static_cast<std::uint32_t>(asbr));
  }

  std::sort(s.offers.begin(), s.offers.end(),
            [](const SpfScratch::Offer& a, const SpfScratch::Offer& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              if (a.mask != b.mask) return a.mask < b.mask;
              return a.cost < b.cost;
            });

  HopSet merged;
  for (std::size_t i = 0; i < s.offers.size();) {
    const SpfScratch::Offer& first = s.offers[i];
    merged.clear();
    std::size_t j = i;
    for (; j < s.offers.size() && s.offers[j].prefix == first.prefix &&
           s.offers[j].mask == first.mask;
         ++j) {
      if (s.offers[j].cost != first.cost) continue;  // sorted: only ties merge
      const std::uint32_t v = s.offers[j].vertex;
      if (v == self_idx) continue;  // self's own prefixes have no next hop
      for (const RouterId& h : s.hops[v]) insert_sorted(merged, h);
    }
    Route r;
    r.prefix = Ipv4Addr{first.prefix};
    r.mask = Ipv4Addr{first.mask};
    r.cost = first.cost;
    r.next_hops.assign(merged.begin(), merged.end());
    r.via = r.next_hops.empty() ? RouterId{} : r.next_hops.front();
    out.push_back(std::move(r));
    i = j;
  }
}

// ---------------------------------------------------------------------------
// Reference implementation (the pre-flat-kernel code, kept verbatim as the
// oracle for tests/ospf/spf_property_test.cpp).

namespace {

/// SPF vertex: a router (type=Router LSA) or a transit network
/// (type=Network LSA, keyed by the DR's interface address).
struct Vertex {
  bool is_network = false;
  Ipv4Addr id;  ///< router id, or DR interface address for networks

  friend auto operator<=>(const Vertex&, const Vertex&) = default;
};

using RefHopSet = std::set<RouterId>;

}  // namespace

std::vector<Route> compute_routes_reference(const Lsdb& lsdb, RouterId self_id,
                                            SimTime now) {
  // Collect the current router/network LSAs.
  std::map<Ipv4Addr, const RouterLsaBody*> routers;
  std::map<Ipv4Addr, const NetworkLsaBody*> networks;  // by DR address
  std::map<Ipv4Addr, const ExternalLsaBody*> externals;
  std::map<Ipv4Addr, RouterId> external_origin;
  lsdb.for_each([&](const LsaKey& key, const Lsdb::Entry& entry) {
    if (lsdb.age_at(entry, now) >= kMaxAgeSeconds) return;
    switch (key.type) {
      case LsaType::kRouter:
        routers[key.link_state_id] =
            std::get_if<RouterLsaBody>(&entry.lsa.body);
        break;
      case LsaType::kNetwork:
        networks[key.link_state_id] =
            std::get_if<NetworkLsaBody>(&entry.lsa.body);
        break;
      case LsaType::kExternal:
        externals[key.link_state_id] =
            std::get_if<ExternalLsaBody>(&entry.lsa.body);
        external_origin[key.link_state_id] = key.advertising_router;
        break;
      default:
        break;
    }
  });

  const Vertex self{false, Ipv4Addr{self_id.value()}};
  if (routers.find(self.id) == routers.end()) return {};

  // Dijkstra over the bidirectionally-verified LSA graph, accumulating
  // the set of equal-cost first hops per vertex.
  std::map<Vertex, std::uint32_t> dist;
  std::map<Vertex, RefHopSet> first_hops;
  using QEntry = std::pair<std::uint32_t, Vertex>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  dist[self] = 0;
  pq.push({0, self});
  std::set<Vertex> done;

  // Does `router`'s LSA link back to vertex `v`?
  auto links_back = [&](Ipv4Addr router, const Vertex& v) {
    auto it = routers.find(router);
    if (it == routers.end() || it->second == nullptr) return false;
    for (const auto& l : it->second->links) {
      if (v.is_network && l.type == RouterLinkType::kTransit &&
          l.link_id == v.id)
        return true;
      if (!v.is_network && l.type == RouterLinkType::kPointToPoint &&
          l.link_id == v.id)
        return true;
    }
    return false;
  };

  // First hops toward a vertex reached from `from` via router `to_router`:
  // inherited from `from`, except that self's direct successors are their
  // own first hop.
  auto hops_via = [&](const Vertex& from, RouterId to_router) -> RefHopSet {
    if (from == self) return RefHopSet{to_router};
    auto it = first_hops.find(from);
    return it == first_hops.end() ? RefHopSet{to_router} : it->second;
  };

  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (done.count(v)) continue;
    done.insert(v);

    auto relax = [&](const Vertex& to, std::uint32_t cost,
                     const RefHopSet& hops) {
      auto it = dist.find(to);
      if (it == dist.end() || d + cost < it->second) {
        dist[to] = d + cost;
        first_hops[to] = hops;
        pq.push({d + cost, to});
      } else if (d + cost == it->second) {
        // Equal-cost path: merge the next-hop sets (ECMP).
        first_hops[to].insert(hops.begin(), hops.end());
      }
    };

    if (!v.is_network) {
      auto rit = routers.find(v.id);
      if (rit == routers.end() || rit->second == nullptr) continue;
      for (const auto& l : rit->second->links) {
        if (l.type == RouterLinkType::kPointToPoint) {
          const Vertex to{false, l.link_id};
          // Bidirectional check: the neighbor must link back to us.
          if (!links_back(l.link_id, v)) continue;
          relax(to, l.metric, hops_via(v, RouterId{l.link_id.value()}));
        } else if (l.type == RouterLinkType::kTransit) {
          const Vertex to{true, l.link_id};
          auto nit = networks.find(l.link_id);
          if (nit == networks.end() || nit->second == nullptr) continue;
          relax(to, l.metric,
                v == self ? RefHopSet{} : first_hops[v]);
        }
      }
    } else {
      auto nit = networks.find(v.id);
      if (nit == networks.end() || nit->second == nullptr) continue;
      for (const auto& attached : nit->second->attached_routers) {
        const Vertex to{false, Ipv4Addr{attached.value()}};
        if (!links_back(Ipv4Addr{attached.value()}, v)) continue;
        // Network-to-router edges cost 0 (§16.1). Crossing the LAN from
        // self makes the attached router the first hop.
        auto it = first_hops.find(v);
        const RefHopSet hops = (it == first_hops.end() || it->second.empty())
                                   ? RefHopSet{attached}
                                   : it->second;
        relax(to, 0, hops);
      }
    }
  }

  // Routes: transit networks, stub prefixes, and externals via their ASBR.
  std::map<std::pair<std::uint32_t, std::uint32_t>, Route> best;
  auto offer = [&](Route r) {
    const auto key = std::make_pair(r.prefix.value(), r.mask.value());
    auto it = best.find(key);
    if (it == best.end() || r.cost < it->second.cost) {
      best[key] = std::move(r);
    } else if (r.cost == it->second.cost) {
      // Same destination at the same cost via a different part of the
      // graph: merge next hops.
      auto& hops = it->second.next_hops;
      for (const auto& h : r.next_hops)
        if (std::find(hops.begin(), hops.end(), h) == hops.end())
          hops.push_back(h);
      std::sort(hops.begin(), hops.end());
      it->second.via = hops.empty() ? RouterId{} : hops.front();
    }
  };

  auto route_for = [&](const Vertex& v, Ipv4Addr prefix, Ipv4Addr mask,
                       std::uint32_t cost) {
    Route r;
    r.prefix = prefix;
    r.mask = mask;
    r.cost = cost;
    if (!(v == self)) {
      const auto& hops = first_hops[v];
      r.next_hops.assign(hops.begin(), hops.end());
      r.via = r.next_hops.empty() ? RouterId{} : r.next_hops.front();
    }
    return r;
  };

  for (const auto& [v, d] : dist) {
    if (v.is_network) {
      auto nit = networks.find(v.id);
      if (nit == networks.end() || nit->second == nullptr) continue;
      const auto mask = nit->second->network_mask;
      offer(route_for(v, Ipv4Addr{v.id.value() & mask.value()}, mask, d));
    } else {
      auto rit = routers.find(v.id);
      if (rit == routers.end() || rit->second == nullptr) continue;
      for (const auto& l : rit->second->links) {
        if (l.type != RouterLinkType::kStub) continue;
        offer(route_for(v, l.link_id, l.link_data, d + l.metric));
      }
    }
  }
  for (const auto& [prefix, ext] : externals) {
    if (ext == nullptr) continue;
    const Vertex asbr{false, Ipv4Addr{external_origin[prefix].value()}};
    auto it = dist.find(asbr);
    if (it == dist.end()) continue;
    offer(route_for(asbr, prefix, ext->network_mask,
                    it->second + ext->metric));
  }

  std::vector<Route> out;
  out.reserve(best.size());
  for (auto& [key, r] : best) out.push_back(std::move(r));
  return out;
}

}  // namespace nidkit::ospf
