// Database synchronization: DBD negotiation and exchange (§10.6, §10.8),
// link-state requests (§10.9) and their retransmission.
#include <algorithm>

#include "ospf/router.hpp"
#include "util/log.hpp"

namespace nidkit::ospf {

void Router::arm_dbd_rxmt(OspfInterface& oi, Neighbor& n) {
  n.dbd_rxmt_timer.cancel();
  n.dbd_rxmt_timer =
      net_.sim().schedule(config_.profile.rxmt_interval, [this, &oi, &n] {
        // Only the master (and routers still negotiating) retransmits DBDs
        // on a timer; the slave retransmits only in response to duplicates.
        if (n.state == NeighborState::kExStart ||
            (n.state == NeighborState::kExchange && n.we_are_master)) {
          ++stats_.retransmissions;
          send_dbd(oi, n, /*retransmit=*/true);
        }
      });
}

void Router::send_dbd(OspfInterface& oi, Neighbor& n, bool retransmit) {
  DbdBody dbd;
  if (retransmit) {
    dbd = n.last_tx_dbd;
  } else {
    dbd.interface_mtu = config_.mtu;
    if (n.state == NeighborState::kExStart) {
      dbd.flags = kDbdFlagInit | kDbdFlagMore | kDbdFlagMs;
      dbd.dd_sequence = n.dd_sequence;
    } else {
      // Exchange: advertise the next batch of database headers.
      const std::size_t batch =
          std::min(config_.profile.dbd_max_headers, n.db_summary.size());
      dbd.lsa_headers.assign(n.db_summary.begin(),
                             n.db_summary.begin() + batch);
      n.db_summary.erase(n.db_summary.begin(), n.db_summary.begin() + batch);
      n.exchange_more_to_send = !n.db_summary.empty();
      dbd.dd_sequence = n.dd_sequence;
      dbd.flags = 0;
      if (n.we_are_master) dbd.flags |= kDbdFlagMs;
      if (n.exchange_more_to_send) dbd.flags |= kDbdFlagMore;
    }
    n.last_tx_dbd = dbd;
  }
  send_packet(oi, dbd, n.address, current_cause_);
  if (n.state == NeighborState::kExStart ||
      (n.state == NeighborState::kExchange && n.we_are_master)) {
    arm_dbd_rxmt(oi, n);
  }
}

void Router::process_dbd_headers(OspfInterface& oi, Neighbor& n,
                                 const DbdBody& dbd) {
  for (const auto& h : dbd.lsa_headers) {
    const LsaKey key = key_of(h);
    const auto* entry = lsdb_.find(key);
    const bool want =
        entry == nullptr || compare_instances(h, entry->lsa.header) > 0;
    if (want) n.ls_requests[key] = h;
  }
  // Discretionary (lsr_per_dbd): FRR-like implementations request missing
  // LSAs as soon as a DBD reveals them; BIRD-like ones batch the request
  // list and ask when the exchange completes.
  if (config_.profile.lsr_per_dbd && !n.ls_requests.empty() &&
      n.state == NeighborState::kExchange) {
    send_ls_requests(oi, n);
  }
}

void Router::handle_dbd(OspfInterface& oi, Neighbor& n, const DbdBody& dbd) {
  // §10.6: a DBD advertising an MTU we could not receive is rejected
  // outright. With both sides checking, an MTU mismatch wedges the
  // adjacency in ExStart — each side retransmitting its negotiation DBD
  // forever — which is exactly how the failure presents on real routers.
  if (config_.profile.check_mtu && dbd.interface_mtu > config_.mtu) {
    NIDKIT_LOG(kWarn, now(), "ospf",
               config_.router_id.to_string()
                   << " rejects DBD from " << n.id.to_string() << ": MTU "
                   << dbd.interface_mtu << " exceeds ours (" << config_.mtu
                   << ")");
    return;
  }
  switch (n.state) {
    case NeighborState::kDown:
    case NeighborState::kInit:
    case NeighborState::kTwoWay:
      return;  // adjacency not (yet) wanted — §10.6 rejects the packet

    case NeighborState::kExStart: {
      // Negotiation (§10.8). The router with the higher id becomes master.
      if (dbd.init() && dbd.more() && dbd.master() &&
          dbd.lsa_headers.empty() && n.id > config_.router_id) {
        // We are slave: adopt the master's sequence number.
        n.we_are_master = false;
        n.dd_sequence = dbd.dd_sequence;
        n.db_summary = lsdb_.summarize(now());
        set_neighbor_state(n, NeighborState::kExchange);
        n.dbd_rxmt_timer.cancel();
        n.last_rx_dbd_valid = true;
        n.last_rx_dbd_flags = dbd.flags;
        n.last_rx_dbd_seq = dbd.dd_sequence;
        process_dbd_headers(oi, n, dbd);
        send_dbd(oi, n, /*retransmit=*/false);
      } else if (!dbd.init() && !dbd.master() &&
                 dbd.dd_sequence == n.dd_sequence &&
                 n.id < config_.router_id) {
        // We are master and the slave has echoed our sequence number.
        n.we_are_master = true;
        n.db_summary = lsdb_.summarize(now());
        set_neighbor_state(n, NeighborState::kExchange);
        n.last_rx_dbd_valid = true;
        n.last_rx_dbd_flags = dbd.flags;
        n.last_rx_dbd_seq = dbd.dd_sequence;
        process_dbd_headers(oi, n, dbd);
        // Even if the slave is already done (M=0), the master still has to
        // send its own header batches and wait for their echoes; the
        // exchange completes in the kExchange handler below.
        ++n.dd_sequence;
        send_dbd(oi, n, /*retransmit=*/false);
      }
      return;
    }

    case NeighborState::kExchange: {
      // Duplicate detection (§10.8): same flags + sequence as the last
      // accepted DBD.
      if (n.last_rx_dbd_valid && dbd.flags == n.last_rx_dbd_flags &&
          dbd.dd_sequence == n.last_rx_dbd_seq) {
        ++stats_.duplicates_received;
        if (!n.we_are_master) {
          // Slave retransmits its previous response.
          ++stats_.retransmissions;
          send_dbd(oi, n, /*retransmit=*/true);
        }
        return;
      }
      // Master/slave bit must be consistent, Init must be clear, and the
      // sequence number must be exactly the one expected.
      const bool ms_conflict = dbd.master() == n.we_are_master;
      const bool seq_ok = n.we_are_master
                              ? dbd.dd_sequence == n.dd_sequence
                              : dbd.dd_sequence == n.dd_sequence + 1;
      if (ms_conflict || dbd.init() || !seq_ok) {
        seq_number_mismatch(oi, n);
        return;
      }
      n.last_rx_dbd_valid = true;
      n.last_rx_dbd_flags = dbd.flags;
      n.last_rx_dbd_seq = dbd.dd_sequence;
      process_dbd_headers(oi, n, dbd);
      if (n.we_are_master) {
        // The slave has echoed our latest DBD. The exchange is complete
        // once the slave signals M=0 *and* the DBD it just echoed was our
        // final one (M=0); otherwise keep polling with the next DBD.
        const bool our_last_was_final =
            (n.last_tx_dbd.flags & kDbdFlagMore) == 0;
        if (!dbd.more() && our_last_was_final) {
          n.dbd_rxmt_timer.cancel();
          exchange_done(oi, n);
        } else {
          ++n.dd_sequence;
          send_dbd(oi, n, /*retransmit=*/false);
        }
      } else {
        n.dd_sequence = dbd.dd_sequence;
        send_dbd(oi, n, /*retransmit=*/false);
        if (!dbd.more() && !n.exchange_more_to_send) exchange_done(oi, n);
      }
      return;
    }

    case NeighborState::kLoading:
    case NeighborState::kFull: {
      // Only duplicates are acceptable here (§10.6); the slave answers
      // them, anything else is a SeqNumberMismatch.
      if (n.last_rx_dbd_valid && dbd.flags == n.last_rx_dbd_flags &&
          dbd.dd_sequence == n.last_rx_dbd_seq) {
        ++stats_.duplicates_received;
        if (!n.we_are_master) {
          ++stats_.retransmissions;
          send_dbd(oi, n, /*retransmit=*/true);
        }
        return;
      }
      seq_number_mismatch(oi, n);
      return;
    }
  }
}

void Router::exchange_done(OspfInterface& oi, Neighbor& n) {
  n.dbd_rxmt_timer.cancel();
  if (n.ls_requests.empty() && n.outstanding_requests.empty()) {
    neighbor_full(oi, n);
  } else {
    set_neighbor_state(n, NeighborState::kLoading);
    send_ls_requests(oi, n);
  }
}

void Router::send_ls_requests(OspfInterface& oi, Neighbor& n) {
  if (!n.outstanding_requests.empty()) return;  // one LSR on the wire at a time
  LsRequestBody body;
  for (const auto& [key, header] : n.ls_requests) {
    if (body.requests.size() >= config_.profile.lsr_max_entries) break;
    body.requests.push_back(
        LsRequestEntry{key.type, key.link_state_id, key.advertising_router});
  }
  if (body.requests.empty()) return;
  n.outstanding_requests = body.requests;
  send_packet(oi, std::move(body), n.address, current_cause_);

  n.lsr_rxmt_timer.cancel();
  n.lsr_rxmt_timer =
      net_.sim().schedule(config_.profile.rxmt_interval, [this, &oi, &n] {
        if (n.outstanding_requests.empty()) return;
        if (n.state != NeighborState::kExchange &&
            n.state != NeighborState::kLoading)
          return;
        // The LSU answering the outstanding request was lost or never
        // sent; re-issue whatever is still wanted (§10.9). This is a
        // timer-driven send: provenance is "spontaneous".
        ++stats_.retransmissions;
        n.outstanding_requests.clear();
        const std::uint64_t saved_cause = current_cause_;
        current_cause_ = 0;
        send_ls_requests(oi, n);
        current_cause_ = saved_cause;
        if (n.outstanding_requests.empty()) loading_check(oi, n);
      });
}

void Router::handle_lsr(OspfInterface& oi, Neighbor& n,
                        const LsRequestBody& lsr) {
  if (n.state < NeighborState::kExchange) return;
  LsUpdateBody lsu;
  for (const auto& req : lsr.requests) {
    const LsaKey key{req.type, req.link_state_id, req.advertising_router};
    const auto* entry = lsdb_.find(key);
    if (entry == nullptr) {
      // BadLSReq (§10.7): the neighbor asked for something we never had —
      // the databases have diverged; restart the exchange.
      seq_number_mismatch(oi, n);
      return;
    }
    lsu.lsas.push_back(lsdb_.snapshot(*entry, now()));
  }
  if (lsu.lsas.empty()) return;
  // Requested LSAs are sent directly and are NOT put on the
  // retransmission list: the LSR mechanism itself provides reliability
  // (the requester re-asks for anything it did not receive).
  send_packet(oi, std::move(lsu), n.address, current_cause_);
}

void Router::seq_number_mismatch(OspfInterface& oi, Neighbor& n) {
  NIDKIT_LOG(kDebug, now(), "ospf",
             config_.router_id.to_string()
                 << " SeqNumberMismatch with " << n.id.to_string()
                 << ", restarting exchange");
  n.db_summary.clear();
  n.ls_requests.clear();
  n.outstanding_requests.clear();
  n.retransmit.clear();
  n.last_rx_dbd_valid = false;
  n.exchange_more_to_send = false;
  n.lsr_rxmt_timer.cancel();
  n.lsu_rxmt_timer.cancel();
  set_neighbor_state(n, NeighborState::kExStart);
  n.we_are_master = true;
  n.dd_sequence = ++dd_seq_counter_;
  send_dbd(oi, n, /*retransmit=*/false);
}

void Router::loading_check(OspfInterface& oi, Neighbor& n) {
  if (n.state != NeighborState::kLoading) return;
  if (!n.ls_requests.empty()) {
    if (n.outstanding_requests.empty()) send_ls_requests(oi, n);
    return;
  }
  if (n.outstanding_requests.empty()) neighbor_full(oi, n);
}

void Router::neighbor_full(OspfInterface& oi, Neighbor& n) {
  set_neighbor_state(n, NeighborState::kFull);
  n.lsr_rxmt_timer.cancel();
  NIDKIT_LOG(kInfo, now(), "ospf",
             config_.router_id.to_string() << " adjacency with "
                                           << n.id.to_string() << " is Full");
  originate_router_lsa();
  if (oi.is_lan && oi.state == InterfaceState::kDr) originate_network_lsa(oi);
}

}  // namespace nidkit::ospf
