// RIPv2 routing engine (RFC 2453 subset) with pluggable behaviour
// variants.
//
// RIP is the toolkit's second protocol under test: the causal-mining
// pipeline is protocol-agnostic, and running it over two RIP variants
// (classic vs eager) demonstrates that, exactly as the paper's motivation
// argues, discretionary behaviours — triggered-update suppression, split
// horizon flavour, responses to requests — surface as packet causal
// relationship discrepancies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netsim/network.hpp"
#include "packet/rip_packet.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace nidkit::rip {

using namespace std::chrono_literals;

/// RIPv2 multicast group (224.0.0.9).
inline constexpr Ipv4Addr kRipMulticast{224, 0, 0, 9};

/// Discretionary behaviours of a RIP implementation.
struct RipProfile {
  std::string name = "generic";
  SimDuration update_interval = 30s;
  /// Uniform jitter applied to the periodic update timer (RFC suggests
  /// ±15%; implementations differ).
  SimDuration update_jitter = 5s;
  SimDuration route_timeout = 180s;
  SimDuration gc_interval = 120s;
  /// Poisoned reverse (advertise metric 16 back toward the next hop)
  /// instead of plain split horizon (omit the route entirely).
  bool poisoned_reverse = false;
  /// Emit triggered updates on route change.
  bool triggered_updates = true;
  /// Suppression delay before a triggered update goes out (§3.10.1 allows
  /// 1-5 s; eager implementations send almost immediately).
  SimDuration triggered_delay = 2s;
  /// Broadcast a whole-table Request at startup (§3.9.1).
  bool request_on_start = true;
  /// Answer a Request with a unicast Response to the asker (vs multicast).
  bool respond_unicast = true;
  /// Wire version for transmitted packets (1 or 2). Version 1 carries no
  /// subnet masks — receivers must infer classful masks (§3.4).
  std::uint8_t send_version = 2;
  /// Accept version-1 packets (the §4.6 compatibility switch). When off, a
  /// strict v2 router silently ignores v1 neighbors — the classic
  /// mixed-version interop failure.
  bool accept_v1 = false;
};

/// Conservative, RFC-suggested-timers variant.
RipProfile rip_classic_profile();

/// Aggressive variant: near-immediate triggered updates, poisoned reverse.
RipProfile rip_eager_profile();

/// Legacy variant: speaks RIPv1 on the wire (no masks) and accepts both
/// versions, inferring classful masks from v1 entries.
RipProfile rip_v1_profile();

struct RipRoute {
  Ipv4Addr prefix;
  Ipv4Addr mask;
  std::uint32_t metric = kInfinityMetric;
  Ipv4Addr next_hop;                ///< 0 for directly connected
  netsim::IfaceIndex iface = 0;
  SimTime expires{0};               ///< route timeout deadline
  bool directly_connected = false;
  bool changed = false;             ///< pending triggered update

  friend bool operator==(const RipRoute&, const RipRoute&) = default;
};

class RipRouter {
 public:
  RipRouter(netsim::Network& net, netsim::NodeId node, RipProfile profile,
            std::uint64_t seed);

  RipRouter(const RipRouter&) = delete;
  RipRouter& operator=(const RipRouter&) = delete;

  /// Installs connected routes, optionally broadcasts the startup Request,
  /// and arms the periodic update timer.
  void start();

  const RipProfile& profile() const { return profile_; }
  std::vector<RipRoute> routes() const;

  /// Injects an additional prefix this router originates (static
  /// redistribution), triggering an update.
  void originate(Ipv4Addr prefix, Ipv4Addr mask, std::uint32_t metric = 1);

  struct Stats {
    std::uint64_t tx_requests = 0;
    std::uint64_t tx_responses = 0;
    std::uint64_t rx_requests = 0;
    std::uint64_t rx_responses = 0;
    std::uint64_t routes_learned = 0;
    std::uint64_t routes_expired = 0;
    std::uint64_t triggered = 0;
    std::uint64_t version_rejected = 0;  ///< v1 packets dropped by a strict v2 router
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PrefixKey {
    std::uint32_t prefix;
    std::uint32_t mask;
    friend auto operator<=>(const PrefixKey&, const PrefixKey&) = default;
  };

  void on_frame(netsim::IfaceIndex iface, const netsim::Frame& frame);
  void handle_request(netsim::IfaceIndex iface, const RipPacket& pkt,
                      Ipv4Addr src);
  void handle_response(netsim::IfaceIndex iface, const RipPacket& pkt,
                       Ipv4Addr src);
  void periodic_update();
  void send_full_table(netsim::IfaceIndex iface, Ipv4Addr dst,
                       std::uint64_t cause);
  void schedule_triggered();
  void send_triggered();
  void route_changed(RipRoute& route);
  void expire_routes();
  /// Builds the response(s) for one interface, split into as many packets
  /// as the §3.6 25-entry cap requires.
  std::vector<RipPacket> build_responses(netsim::IfaceIndex iface,
                                         bool changed_only) const;
  void send_packet(netsim::IfaceIndex iface, const RipPacket& pkt,
                   Ipv4Addr dst, std::uint64_t cause);
  void arm_update_timer();

  netsim::Network& net_;
  netsim::NodeId node_;
  RipProfile profile_;
  Rng rng_;
  std::map<PrefixKey, RipRoute> table_;
  netsim::TimerHandle update_timer_;
  netsim::TimerHandle triggered_timer_;
  netsim::TimerHandle expiry_timer_;
  bool triggered_pending_ = false;
  std::uint64_t triggered_cause_ = 0;
  std::uint64_t current_cause_ = 0;
  Stats stats_;
};

}  // namespace nidkit::rip
