#include "rip/rip_router.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace nidkit::rip {

RipProfile rip_classic_profile() {
  RipProfile p;
  p.name = "rip-classic";
  p.update_interval = 30s;
  p.update_jitter = 5s;
  p.poisoned_reverse = false;
  p.triggered_updates = true;
  p.triggered_delay = 2s;  // §3.10.1's 1-5 s suppression
  p.respond_unicast = true;
  return p;
}

RipProfile rip_eager_profile() {
  RipProfile p;
  p.name = "rip-eager";
  p.update_interval = 30s;
  p.update_jitter = 1s;
  p.poisoned_reverse = true;
  p.triggered_updates = true;
  p.triggered_delay = 50ms;  // near-immediate propagation
  p.respond_unicast = true;
  return p;
}

RipProfile rip_v1_profile() {
  RipProfile p;
  p.name = "rip-v1";
  p.send_version = 1;
  p.accept_v1 = true;
  p.poisoned_reverse = false;
  p.triggered_delay = 2s;
  return p;
}

namespace {
Ipv4Addr mask_from_prefix(std::uint8_t prefix_len) {
  if (prefix_len == 0) return Ipv4Addr{0};
  return Ipv4Addr{~std::uint32_t{0} << (32 - prefix_len)};
}

/// Classful mask inference for RIPv1 entries (§3.4 / RFC 1058): class A
/// /8, class B /16, class C /24.
Ipv4Addr classful_mask(Ipv4Addr prefix) {
  const std::uint8_t first = static_cast<std::uint8_t>(prefix.value() >> 24);
  if (first < 128) return Ipv4Addr{255, 0, 0, 0};
  if (first < 192) return Ipv4Addr{255, 255, 0, 0};
  return Ipv4Addr{255, 255, 255, 0};
}
}  // namespace

RipRouter::RipRouter(netsim::Network& net, netsim::NodeId node,
                     RipProfile profile, std::uint64_t seed)
    : net_(net), node_(node), profile_(std::move(profile)), rng_(seed) {
  net_.set_receive_handler(
      node_, [this](netsim::IfaceIndex idx, const netsim::Frame& f) {
        on_frame(idx, f);
      });
}

void RipRouter::start() {
  const auto n_ifaces = net_.iface_count(node_);
  for (netsim::IfaceIndex i = 0; i < n_ifaces; ++i) {
    const auto& ni = net_.iface(node_, i);
    const Ipv4Addr mask = mask_from_prefix(ni.prefix_len);
    RipRoute r;
    r.prefix = Ipv4Addr{ni.address.value() & mask.value()};
    r.mask = mask;
    r.metric = 1;
    r.iface = i;
    r.directly_connected = true;
    table_[PrefixKey{r.prefix.value(), r.mask.value()}] = r;
  }
  if (profile_.request_on_start) {
    const RipPacket req = make_full_table_request();
    for (netsim::IfaceIndex i = 0; i < n_ifaces; ++i)
      send_packet(i, req, kRipMulticast, /*cause=*/0);
  }
  arm_update_timer();
  expiry_timer_ = net_.sim().schedule(1s, [this] { expire_routes(); });
}

void RipRouter::arm_update_timer() {
  SimDuration when = profile_.update_interval;
  if (profile_.update_jitter.count() > 0)
    when += rng_.jitter(SimDuration{0}, profile_.update_jitter) -
            profile_.update_jitter / 2;
  update_timer_ = net_.sim().schedule(when, [this] { periodic_update(); });
}

void RipRouter::periodic_update() {
  for (netsim::IfaceIndex i = 0; i < net_.iface_count(node_); ++i)
    send_full_table(i, kRipMulticast, /*cause=*/0);
  // Periodic updates subsume any pending triggered update (§3.10.1).
  triggered_pending_ = false;
  triggered_timer_.cancel();
  for (auto& [key, r] : table_) r.changed = false;
  arm_update_timer();
}

std::vector<RipPacket> RipRouter::build_responses(netsim::IfaceIndex iface,
                                                  bool changed_only) const {
  std::vector<RipPacket> out;
  RipPacket pkt;
  pkt.command = Command::kResponse;
  for (const auto& [key, r] : table_) {
    if (changed_only && !r.changed) continue;
    std::uint32_t metric = r.metric;
    if (!r.directly_connected && r.iface == iface) {
      // Split horizon: never advertise a route back out the interface it
      // was learned on — with poisoned reverse it goes out as unreachable.
      if (!profile_.poisoned_reverse) continue;
      metric = kInfinityMetric;
    }
    RipEntry e;
    e.prefix = r.prefix;
    e.mask = r.mask;
    e.metric = metric;
    pkt.entries.push_back(e);
    if (pkt.entries.size() == 25) {  // §3.6 message cap: start a new packet
      out.push_back(std::move(pkt));
      pkt = RipPacket{};
      pkt.command = Command::kResponse;
    }
  }
  if (!pkt.entries.empty()) out.push_back(std::move(pkt));
  return out;
}

void RipRouter::send_full_table(netsim::IfaceIndex iface, Ipv4Addr dst,
                                std::uint64_t cause) {
  for (const auto& pkt : build_responses(iface, /*changed_only=*/false))
    send_packet(iface, pkt, dst, cause);
}

void RipRouter::send_packet(netsim::IfaceIndex iface, const RipPacket& pkt,
                            Ipv4Addr dst, std::uint64_t cause) {
  netsim::Frame frame;
  frame.dst = dst;
  frame.protocol = 17;  // UDP (port 520 implied; headers not modeled)
  RipPacket versioned = pkt;
  versioned.version = profile_.send_version;
  frame.payload = encode(versioned);
  frame.caused_by = cause;
  if (pkt.command == Command::kRequest)
    ++stats_.tx_requests;
  else
    ++stats_.tx_responses;
  net_.send(node_, iface, std::move(frame));
}

void RipRouter::on_frame(netsim::IfaceIndex iface,
                         const netsim::Frame& frame) {
  if (frame.protocol != 17) return;
  auto decoded = decode(frame.payload);
  if (!decoded.ok()) return;
  current_cause_ = frame.id;
  RipPacket& pkt = decoded.value();
  if (pkt.version == 1) {
    if (!profile_.accept_v1) {
      // §4.6 compatibility switch set to RIP-2-only: v1 neighbors are
      // silently invisible.
      ++stats_.version_rejected;
      current_cause_ = 0;
      return;
    }
    // v1 entries carry no masks: infer classful ones.
    for (auto& e : pkt.entries)
      if (e.mask.is_zero() && e.afi == kAfInet) e.mask = classful_mask(e.prefix);
  }
  if (pkt.command == Command::kRequest) {
    ++stats_.rx_requests;
    handle_request(iface, pkt, frame.src);
  } else {
    ++stats_.rx_responses;
    handle_response(iface, pkt, frame.src);
  }
  current_cause_ = 0;
}

void RipRouter::handle_request(netsim::IfaceIndex iface, const RipPacket& pkt,
                               Ipv4Addr src) {
  const Ipv4Addr dst = profile_.respond_unicast ? src : kRipMulticast;
  if (pkt.is_full_table_request()) {
    send_full_table(iface, dst, current_cause_);
    return;
  }
  // Specific-route request (§3.9.1): answer exactly what was asked,
  // metric 16 for unknown prefixes, no split horizon applied.
  RipPacket reply;
  reply.command = Command::kResponse;
  for (const auto& e : pkt.entries) {
    RipEntry out = e;
    auto it = table_.find(PrefixKey{e.prefix.value(), e.mask.value()});
    out.metric = it == table_.end() ? kInfinityMetric : it->second.metric;
    reply.entries.push_back(out);
  }
  if (!reply.entries.empty()) send_packet(iface, reply, dst, current_cause_);
}

void RipRouter::handle_response(netsim::IfaceIndex iface,
                                const RipPacket& pkt, Ipv4Addr src) {
  bool any_change = false;
  for (const auto& e : pkt.entries) {
    if (e.afi != kAfInet) continue;
    const std::uint32_t metric =
        std::min<std::uint32_t>(e.metric + 1, kInfinityMetric);
    const PrefixKey key{e.prefix.value(), e.mask.value()};
    auto it = table_.find(key);

    if (it == table_.end()) {
      if (metric >= kInfinityMetric) continue;  // don't learn unreachables
      RipRoute r;
      r.prefix = e.prefix;
      r.mask = e.mask;
      r.metric = metric;
      r.next_hop = src;
      r.iface = iface;
      r.expires = net_.sim().now() + profile_.route_timeout;
      r.changed = true;
      table_[key] = r;
      ++stats_.routes_learned;
      any_change = true;
      continue;
    }

    RipRoute& r = it->second;
    if (r.directly_connected) continue;
    const bool from_next_hop = r.next_hop == src && r.iface == iface;
    if (from_next_hop) {
      r.expires = net_.sim().now() + profile_.route_timeout;
      if (metric != r.metric) {
        r.metric = metric;
        route_changed(r);
        any_change = true;
      }
    } else if (metric < r.metric) {
      r.metric = metric;
      r.next_hop = src;
      r.iface = iface;
      r.expires = net_.sim().now() + profile_.route_timeout;
      route_changed(r);
      any_change = true;
    }
  }
  if (any_change && profile_.triggered_updates) {
    triggered_cause_ = current_cause_;
    schedule_triggered();
  }
}

void RipRouter::route_changed(RipRoute& route) { route.changed = true; }

void RipRouter::schedule_triggered() {
  if (triggered_pending_) return;
  triggered_pending_ = true;
  triggered_timer_ = net_.sim().schedule(profile_.triggered_delay,
                                         [this] { send_triggered(); });
}

void RipRouter::send_triggered() {
  if (!triggered_pending_) return;
  triggered_pending_ = false;
  ++stats_.triggered;
  for (netsim::IfaceIndex i = 0; i < net_.iface_count(node_); ++i) {
    for (const auto& pkt : build_responses(i, /*changed_only=*/true))
      send_packet(i, pkt, kRipMulticast, triggered_cause_);
  }
  for (auto& [key, r] : table_) r.changed = false;
  triggered_cause_ = 0;
}

void RipRouter::expire_routes() {
  const SimTime now = net_.sim().now();
  bool any_change = false;
  for (auto it = table_.begin(); it != table_.end();) {
    RipRoute& r = it->second;
    if (!r.directly_connected && r.metric < kInfinityMetric &&
        now >= r.expires) {
      // Timeout: mark unreachable and advertise the loss (§3.8).
      r.metric = kInfinityMetric;
      r.changed = true;
      r.expires = now + profile_.gc_interval;
      ++stats_.routes_expired;
      any_change = true;
      ++it;
    } else if (!r.directly_connected && r.metric >= kInfinityMetric &&
               now >= r.expires) {
      it = table_.erase(it);  // garbage collection
    } else {
      ++it;
    }
  }
  if (any_change && profile_.triggered_updates) schedule_triggered();
  expiry_timer_ = net_.sim().schedule(1s, [this] { expire_routes(); });
}

std::vector<RipRoute> RipRouter::routes() const {
  std::vector<RipRoute> out;
  out.reserve(table_.size());
  for (const auto& [key, r] : table_) out.push_back(r);
  return out;
}

void RipRouter::originate(Ipv4Addr prefix, Ipv4Addr mask,
                          std::uint32_t metric) {
  RipRoute r;
  r.prefix = prefix;
  r.mask = mask;
  r.metric = metric;
  r.directly_connected = true;
  r.changed = true;
  // An originated prefix belongs to no interface: advertise it everywhere
  // (use an out-of-range iface index so split horizon never suppresses it).
  r.iface = static_cast<netsim::IfaceIndex>(~0u);
  table_[PrefixKey{prefix.value(), mask.value()}] = r;
  if (profile_.triggered_updates) {
    triggered_cause_ = current_cause_;
    schedule_triggered();
  }
}

}  // namespace nidkit::rip
