#include "detect/detect.hpp"

namespace nidkit::detect {

std::string to_string(mining::RelationDirection dir) {
  return dir == mining::RelationDirection::kSendToRecv ? "send->recv"
                                                       : "recv->send";
}

std::vector<Discrepancy> compare(const NamedRelations& a,
                                 const NamedRelations& b) {
  std::vector<Discrepancy> out;
  for (const auto dir : {mining::RelationDirection::kSendToRecv,
                         mining::RelationDirection::kRecvToSend}) {
    for (const auto& [cell, stats] : a.relations->cells(dir)) {
      if (b.relations->find(dir, cell) == nullptr)
        out.push_back(Discrepancy{dir, cell, a.name, b.name, stats});
    }
    for (const auto& [cell, stats] : b.relations->cells(dir)) {
      if (a.relations->find(dir, cell) == nullptr)
        out.push_back(Discrepancy{dir, cell, b.name, a.name, stats});
    }
  }
  return out;
}

std::vector<Discrepancy> compare_all(
    const std::vector<NamedRelations>& impls) {
  std::vector<Discrepancy> out;
  for (const auto dir : {mining::RelationDirection::kSendToRecv,
                         mining::RelationDirection::kRecvToSend}) {
    for (const auto& haver : impls) {
      for (const auto& [cell, stats] : haver.relations->cells(dir)) {
        for (const auto& lacker : impls) {
          if (&lacker == &haver) continue;
          if (lacker.relations->find(dir, cell) == nullptr)
            out.push_back(
                Discrepancy{dir, cell, haver.name, lacker.name, stats});
        }
      }
    }
  }
  return out;
}

}  // namespace nidkit::detect
