#include "detect/report.hpp"

#include <algorithm>
#include <sstream>

namespace nidkit::detect {

namespace {

/// Pads `text` to `width` display columns. The check mark and slashed zero
/// are multi-byte in UTF-8 but single-column on screen, so padding counts
/// code points, not bytes (sufficient for the symbols we emit).
std::string pad(const std::string& text, std::size_t width) {
  std::size_t cols = 0;
  for (unsigned char c : text)
    if ((c & 0xc0) != 0x80) ++cols;  // count non-continuation bytes
  std::string out = text;
  while (cols < width) {
    out.push_back(' ');
    ++cols;
  }
  return out;
}

}  // namespace

std::string render_matrix(const std::vector<NamedRelations>& impls,
                          const std::vector<std::string>& stimulus_order,
                          const std::vector<std::string>& response_order,
                          mining::RelationDirection dir,
                          const std::string& row_prefix,
                          const std::string& col_prefix) {
  std::ostringstream os;
  std::size_t row_width = row_prefix.size() + 2;
  for (const auto& r : response_order)
    row_width = std::max(row_width, row_prefix.size() + r.size() + 3);

  std::vector<std::size_t> col_width(stimulus_order.size());
  for (std::size_t c = 0; c < stimulus_order.size(); ++c)
    col_width[c] = col_prefix.size() + stimulus_order[c].size() + 3;

  // Implementation banner row.
  os << pad("", row_width);
  for (const auto& impl : impls) {
    std::size_t block = 0;
    for (const auto w : col_width) block += w;
    os << "| " << pad(impl.name, block > 2 ? block - 2 : impl.name.size())
       << ' ';
  }
  os << '\n';

  // Column header row.
  os << pad("", row_width);
  for (std::size_t i = 0; i < impls.size(); ++i) {
    os << "| ";
    for (std::size_t c = 0; c < stimulus_order.size(); ++c)
      os << pad(col_prefix + "(" + stimulus_order[c] + ")", col_width[c]);
  }
  os << '\n';

  for (const auto& resp : response_order) {
    os << pad(row_prefix + "(" + resp + ")", row_width);
    for (const auto& impl : impls) {
      os << "| ";
      for (std::size_t c = 0; c < stimulus_order.size(); ++c) {
        const bool present = impl.relations->has(dir, stimulus_order[c], resp);
        os << pad(present ? "✓" : "Ø", col_width[c]);
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string render_discrepancies(const std::vector<Discrepancy>& found) {
  std::ostringstream os;
  if (found.empty()) {
    os << "no discrepancies: the implementations' packet causal "
          "relationships agree\n";
    return os.str();
  }
  for (const auto& d : found) {
    os << "[" << to_string(d.direction) << "] " << d.cell.stimulus << " -> "
       << d.cell.response << ": present in " << d.present_in << " (seen "
       << d.evidence.count << "x, first at "
       << format_time(d.evidence.first_seen) << "), never in " << d.absent_in
       << '\n';
  }
  return os.str();
}

std::string render_response_profile(const mining::ResponseProfile& profile,
                                    const std::string& stimulus_verb,
                                    const std::string& response_verb) {
  std::ostringstream os;
  for (const auto& [stimulus, responses] : profile.by_stimulus) {
    os << "after " << stimulus_verb << "(" << stimulus << "): ";
    bool first = true;
    for (const auto& r : responses) {
      if (!first) os << ", ";
      os << response_verb << "(" << r.label << ") "
         << static_cast<int>(r.fraction * 100.0 + 0.5) << "% (" << r.count
         << "x)";
      first = false;
    }
    os << '\n';
  }
  return os.str();
}

std::string render_relations(const mining::RelationSet& set) {
  std::ostringstream os;
  for (const auto dir : {mining::RelationDirection::kSendToRecv,
                         mining::RelationDirection::kRecvToSend}) {
    for (const auto& [cell, stats] : set.cells(dir)) {
      os << to_string(dir) << ' ' << cell.stimulus << " -> " << cell.response
         << " (" << stats.count << "x)\n";
    }
  }
  return os.str();
}

}  // namespace nidkit::detect
