// Non-interoperability detection: comparing implementations' mined
// relationship sets and flagging disagreements (the paper's §2 output).
//
// A discrepancy means one implementation exhibits (and therefore expects)
// a packet causal relationship the other never exhibits — e.g. one
// implementation responds to a stale LSU with a newer LSU while the other
// stays silent. Each flagged discrepancy carries the evidence needed to
// reproduce it: the trace indices of an example stimulus/response pair in
// the implementation that has the relationship.
#pragma once

#include <string>
#include <vector>

#include "mining/relation.hpp"

namespace nidkit::detect {

/// One flagged candidate non-interoperability.
struct Discrepancy {
  mining::RelationDirection direction = mining::RelationDirection::kSendToRecv;
  mining::RelationCell cell;
  /// Name of the implementation that exhibits the relationship...
  std::string present_in;
  /// ...and the one that never does.
  std::string absent_in;
  /// Evidence from the exhibiting implementation.
  mining::RelationStats evidence;
};

/// A named implementation's mined relationships.
struct NamedRelations {
  std::string name;
  const mining::RelationSet* relations = nullptr;
};

/// Pairwise comparison: every cell present in exactly one of the two sets
/// becomes a Discrepancy. Deterministic order (direction, then cell).
std::vector<Discrepancy> compare(const NamedRelations& a,
                                 const NamedRelations& b);

/// N-way comparison: a cell is flagged once per implementation that lacks
/// it while at least one other has it.
std::vector<Discrepancy> compare_all(
    const std::vector<NamedRelations>& impls);

std::string to_string(mining::RelationDirection dir);

}  // namespace nidkit::detect
