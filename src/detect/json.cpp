#include "detect/json.hpp"

#include <sstream>

namespace nidkit::detect {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void emit_cell(std::ostringstream& os, mining::RelationDirection dir,
               const mining::RelationCell& cell,
               const mining::RelationStats& stats) {
  os << "{\"direction\":\"" << to_string(dir) << "\",\"stimulus\":\""
     << json_escape(cell.stimulus) << "\",\"response\":\""
     << json_escape(cell.response) << "\",\"count\":" << stats.count
     << ",\"first_seen_us\":" << stats.first_seen.count() << "}";
}

}  // namespace

std::string to_json(const std::vector<NamedRelations>& impls,
                    const std::vector<Discrepancy>& discrepancies,
                    const std::string* runtime_json) {
  std::ostringstream os;
  os << "{\"implementations\":[";
  for (std::size_t i = 0; i < impls.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(impls[i].name) << "\"";
  }
  os << "],\"relations\":{";
  for (std::size_t i = 0; i < impls.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(impls[i].name) << "\":[";
    bool first = true;
    for (const auto dir : {mining::RelationDirection::kSendToRecv,
                           mining::RelationDirection::kRecvToSend}) {
      for (const auto& [cell, stats] : impls[i].relations->cells(dir)) {
        if (!first) os << ",";
        emit_cell(os, dir, cell, stats);
        first = false;
      }
    }
    os << "]";
  }
  os << "},\"discrepancies\":[";
  for (std::size_t i = 0; i < discrepancies.size(); ++i) {
    if (i) os << ",";
    const auto& d = discrepancies[i];
    os << "{\"direction\":\"" << to_string(d.direction)
       << "\",\"stimulus\":\"" << json_escape(d.cell.stimulus)
       << "\",\"response\":\"" << json_escape(d.cell.response)
       << "\",\"present_in\":\"" << json_escape(d.present_in)
       << "\",\"absent_in\":\"" << json_escape(d.absent_in)
       << "\",\"count\":" << d.evidence.count
       << ",\"first_seen_us\":" << d.evidence.first_seen.count() << "}";
  }
  os << "]";
  if (runtime_json) os << ",\"runtime\":" << *runtime_json;
  os << "}";
  return os.str();
}

}  // namespace nidkit::detect
