// JSON rendering of audit results, for toolchains that consume the flags
// programmatically (CI gates, dashboards). Hand-rolled emitter — the only
// JSON this repo ever produces is these few shapes.
#pragma once

#include <string>
#include <vector>

#include "detect/detect.hpp"

namespace nidkit::detect {

/// Escapes a string for use inside a JSON string literal.
std::string json_escape(const std::string& text);

/// {"implementations":[...], "relations":{impl:[{dir,stimulus,response,
/// count,first_seen_us},...]}, "discrepancies":[{dir,stimulus,response,
/// present_in,absent_in,count,first_seen_us},...]}
///
/// The default report is fully deterministic: identical inputs produce
/// identical bytes regardless of how many workers mined them. When
/// `runtime_json` is non-null it is embedded verbatim as a trailing
/// "runtime" member — that section carries wall-clock telemetry (see
/// harness::ExecReport::to_json) and is, by nature, not reproducible
/// across runs; callers opt into it explicitly (cli `--stats inline`).
std::string to_json(const std::vector<NamedRelations>& impls,
                    const std::vector<Discrepancy>& discrepancies,
                    const std::string* runtime_json = nullptr);

}  // namespace nidkit::detect
