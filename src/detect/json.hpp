// JSON rendering of audit results, for toolchains that consume the flags
// programmatically (CI gates, dashboards). Hand-rolled emitter — the only
// JSON this repo ever produces is these few shapes.
#pragma once

#include <string>
#include <vector>

#include "detect/detect.hpp"

namespace nidkit::detect {

/// Escapes a string for use inside a JSON string literal.
std::string json_escape(const std::string& text);

/// {"implementations":[...], "relations":{impl:[{dir,stimulus,response,
/// count,first_seen_us},...]}, "discrepancies":[{dir,stimulus,response,
/// present_in,absent_in,count,first_seen_us},...]}
std::string to_json(const std::vector<NamedRelations>& impls,
                    const std::vector<Discrepancy>& discrepancies);

}  // namespace nidkit::detect
