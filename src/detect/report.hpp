// Report rendering: the paper's ✓/Ø matrices and discrepancy listings.
#pragma once

#include <string>
#include <vector>

#include "detect/detect.hpp"

namespace nidkit::detect {

/// Renders relationship matrices in the paper's presentation: one block of
/// columns per implementation, columns are Snd(stimulus), rows are
/// Rcv(response), each cell ✓ (relationship observed) or Ø (never
/// observed). `dir` selects which mined direction fills the cells;
/// kSendToRecv reproduces the published tables.
std::string render_matrix(const std::vector<NamedRelations>& impls,
                          const std::vector<std::string>& stimulus_order,
                          const std::vector<std::string>& response_order,
                          mining::RelationDirection dir,
                          const std::string& row_prefix = "Rcv",
                          const std::string& col_prefix = "Snd");

/// One line per flagged discrepancy, deterministic order.
std::string render_discrepancies(const std::vector<Discrepancy>& found);

/// Compact single-set listing (debugging aid).
std::string render_relations(const mining::RelationSet& set);

/// Renders a per-stimulus response-set view ("after Snd(LSU): LSAck 62%,
/// LSU 31%, Hello 7%") — the paper's §2 formalization of what an
/// implementation expects as compliant responses.
std::string render_response_profile(const mining::ResponseProfile& profile,
                                    const std::string& stimulus_verb = "Snd",
                                    const std::string& response_verb = "Rcv");

}  // namespace nidkit::detect
