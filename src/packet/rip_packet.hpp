// RIPv2 wire format (RFC 2453 §4).
//
// RIP is the second protocol the toolkit targets, demonstrating that the
// causal-mining technique is protocol-agnostic: the miner only needs a
// packet-key function, which for RIP is (command, refinements).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/ip.hpp"
#include "util/result.hpp"

namespace nidkit::rip {

enum class Command : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

std::string to_string(Command c);

inline constexpr std::uint8_t kRipVersion = 2;
inline constexpr std::uint32_t kInfinityMetric = 16;
inline constexpr std::uint16_t kRipPort = 520;
inline constexpr std::uint16_t kAfInet = 2;

/// One route entry (§4.3). An AFI of 0 with metric 16 in a request means
/// "send me your whole table" (§3.9.1).
struct RipEntry {
  std::uint16_t afi = kAfInet;
  std::uint16_t route_tag = 0;
  Ipv4Addr prefix;
  Ipv4Addr mask;
  Ipv4Addr next_hop;
  std::uint32_t metric = 1;

  friend bool operator==(const RipEntry&, const RipEntry&) = default;
};

struct RipPacket {
  Command command = Command::kResponse;
  /// 1 or 2. RIPv1 entries carry no subnet mask or next hop on the wire
  /// (§3.4); decoding a v1 packet leaves those fields zero — the
  /// information loss behind the classic v1/v2 interop failures.
  std::uint8_t version = kRipVersion;
  std::vector<RipEntry> entries;

  /// True for the §3.9.1 whole-table request form.
  bool is_full_table_request() const;

  std::string summary() const;

  friend bool operator==(const RipPacket&, const RipPacket&) = default;
};

/// Builds the whole-table request (one AFI-0, metric-16 entry).
RipPacket make_full_table_request();

std::vector<std::uint8_t> encode(const RipPacket& pkt);
Result<RipPacket> decode(std::span<const std::uint8_t> wire);

}  // namespace nidkit::rip
