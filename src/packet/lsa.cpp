#include "packet/lsa.hpp"

#include <sstream>

#include "util/checksum.hpp"

namespace nidkit::ospf {

std::string LsaHeader::to_string() const {
  std::ostringstream os;
  os << nidkit::ospf::to_string(type) << " id=" << link_state_id.to_string()
     << " adv=" << advertising_router.to_string() << " seq=0x" << std::hex
     << static_cast<std::uint32_t>(seq) << std::dec << " age=" << age;
  return os.str();
}

namespace {

void encode_header(const LsaHeader& h, ByteWriter& w) {
  w.u16(h.age);
  w.u8(h.options);
  w.u8(static_cast<std::uint8_t>(h.type));
  w.u32(h.link_state_id.value());
  w.u32(h.advertising_router.value());
  w.i32(h.seq);
  w.u16(h.checksum);
  w.u16(h.length);
}

Result<LsaHeader> decode_header(ByteReader& r) {
  LsaHeader h;
  h.age = r.u16();
  h.options = r.u8();
  const std::uint8_t type = r.u8();
  h.link_state_id = Ipv4Addr{r.u32()};
  h.advertising_router = Ipv4Addr{r.u32()};
  h.seq = r.i32();
  h.checksum = r.u16();
  h.length = r.u16();
  if (!r.ok()) return fail("truncated LSA header");
  if (type < 1 || type > 5) return fail("unknown LSA type " + std::to_string(type));
  h.type = static_cast<LsaType>(type);
  if (h.length < kLsaHeaderSize)
    return fail("LSA length shorter than header");
  return h;
}

void encode_body(const LsaBody& body, ByteWriter& w) {
  std::visit(
      [&w](const auto& b) {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, RouterLsaBody>) {
          w.u8(b.flags);
          w.u8(0);
          w.u16(static_cast<std::uint16_t>(b.links.size()));
          for (const auto& link : b.links) {
            w.u32(link.link_id.value());
            w.u32(link.link_data.value());
            w.u8(static_cast<std::uint8_t>(link.type));
            w.u8(0);  // #TOS metrics (none)
            w.u16(link.metric);
          }
        } else if constexpr (std::is_same_v<B, NetworkLsaBody>) {
          w.u32(b.network_mask.value());
          for (const auto& rid : b.attached_routers) w.u32(rid.value());
        } else if constexpr (std::is_same_v<B, SummaryLsaBody>) {
          w.u32(b.network_mask.value());
          w.u8(0);
          w.u24(b.metric);
        } else {
          static_assert(std::is_same_v<B, ExternalLsaBody>);
          w.u32(b.network_mask.value());
          w.u8(b.type2 ? 0x80 : 0x00);
          w.u24(b.metric);
          w.u32(b.forwarding_address.value());
          w.u32(b.external_route_tag);
        }
      },
      body);
}

Result<LsaBody> decode_body(LsaType type, std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  switch (type) {
    case LsaType::kRouter: {
      RouterLsaBody b;
      b.flags = r.u8();
      r.skip(1);
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n; ++i) {
        RouterLink link;
        link.link_id = Ipv4Addr{r.u32()};
        link.link_data = Ipv4Addr{r.u32()};
        const std::uint8_t lt = r.u8();
        r.skip(1);
        link.metric = r.u16();
        if (lt < 1 || lt > 4)
          return fail("bad router link type " + std::to_string(lt));
        link.type = static_cast<RouterLinkType>(lt);
        b.links.push_back(link);
      }
      if (!r.ok()) return fail("truncated router-LSA body");
      return LsaBody{std::move(b)};
    }
    case LsaType::kNetwork: {
      NetworkLsaBody b;
      b.network_mask = Ipv4Addr{r.u32()};
      while (r.ok() && r.remaining() >= 4) b.attached_routers.push_back(RouterId{r.u32()});
      if (!r.ok() || r.remaining() != 0)
        return fail("malformed network-LSA body");
      return LsaBody{std::move(b)};
    }
    case LsaType::kSummaryNet:
    case LsaType::kSummaryAsbr: {
      SummaryLsaBody b;
      b.network_mask = Ipv4Addr{r.u32()};
      r.skip(1);
      b.metric = r.u24();
      if (!r.ok()) return fail("truncated summary-LSA body");
      return LsaBody{std::move(b)};
    }
    case LsaType::kExternal: {
      ExternalLsaBody b;
      b.network_mask = Ipv4Addr{r.u32()};
      const std::uint8_t e = r.u8();
      b.type2 = (e & 0x80) != 0;
      b.metric = r.u24();
      b.forwarding_address = Ipv4Addr{r.u32()};
      b.external_route_tag = r.u32();
      if (!r.ok()) return fail("truncated external-LSA body");
      return LsaBody{std::move(b)};
    }
  }
  return fail("unreachable LSA type");
}

}  // namespace

void Lsa::finalize() {
  ByteWriter body_w;
  encode_body(body, body_w);
  header.length =
      static_cast<std::uint16_t>(kLsaHeaderSize + body_w.size());

  // The Fletcher checksum covers the LSA minus the 2-byte age field, with
  // the checksum field (offset 14 after stripping age) zeroed.
  ByteWriter full;
  LsaHeader tmp = header;
  tmp.checksum = 0;
  encode_header(tmp, full);
  full.bytes(body_w.view());
  const auto view = full.view();
  header.checksum = fletcher_checksum(view.subspan(2), 14);
}

void Lsa::encode(ByteWriter& w) const {
  encode_header(header, w);
  encode_body(body, w);
}

bool Lsa::checksum_ok() const {
  ByteWriter full;
  encode(full);
  const auto view = full.view();
  return fletcher_checksum_ok(view.subspan(2));
}

Result<Lsa> Lsa::decode(ByteReader& r) {
  auto h = decode_header(r);
  if (!h.ok()) return fail(h.error());
  Lsa lsa;
  lsa.header = h.value();
  const std::size_t body_len = lsa.header.length - kLsaHeaderSize;
  const auto raw = r.bytes(body_len);
  if (!r.ok()) return fail("LSA body truncated");
  auto body = decode_body(lsa.header.type, raw);
  if (!body.ok()) return fail(body.error());
  lsa.body = std::move(body).take();
  return lsa;
}

int compare_instances(const LsaHeader& a, const LsaHeader& b) {
  // §13.1: greater sequence number wins; then greater checksum; then an
  // instance at MaxAge is newer; then, if the ages differ by more than
  // MaxAgeDiff, the smaller age is newer; otherwise same instance.
  if (a.seq != b.seq) return a.seq > b.seq ? 1 : -1;
  if (a.checksum != b.checksum) return a.checksum > b.checksum ? 1 : -1;
  const bool a_max = a.age >= kMaxAgeSeconds;
  const bool b_max = b.age >= kMaxAgeSeconds;
  if (a_max != b_max) return a_max ? 1 : -1;
  const int diff = static_cast<int>(a.age) - static_cast<int>(b.age);
  if (diff > kMaxAgeDiffSeconds) return -1;
  if (diff < -kMaxAgeDiffSeconds) return 1;
  return 0;
}

}  // namespace nidkit::ospf
