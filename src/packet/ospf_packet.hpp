// OSPFv2 packet structures and wire codec (RFC 2328 appendix A).
//
// Every packet a simulated router sends is encoded to bytes through this
// codec, carried across the virtual network, and decoded by the receiver —
// exactly what the paper's capture-based pipeline observes. Checksums are
// real (RFC 1071 over the packet excluding the authentication field).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "packet/lsa.hpp"
#include "packet/ospf_types.hpp"
#include "util/bytes.hpp"
#include "util/ip.hpp"
#include "util/result.hpp"

namespace nidkit::ospf {

/// The 24-byte OSPF packet header (§A.3.1). Null (AuType 0) and simple
/// password (AuType 1, §D.4.2) authentication are modeled; the checksum
/// covers the packet excluding the 64-bit authentication field in both.
struct OspfHeader {
  std::uint8_t version = kOspfVersion;
  PacketType type = PacketType::kHello;
  std::uint16_t length = 0;  ///< filled by encode()
  RouterId router_id;
  AreaId area_id;
  std::uint16_t checksum = 0;  ///< filled by encode()
  std::uint16_t au_type = 0;  ///< 0 = null, 1 = simple password, 2 = MD5
  std::array<std::uint8_t, 8> auth{};  ///< password bytes for AuType 1

  // AuType 2 (cryptographic, §D.4.3) fields carried in the auth slot:
  std::uint8_t md5_key_id = 0;
  std::uint32_t md5_seq = 0;  ///< non-decreasing anti-replay sequence
};

/// Hello packet body (§A.3.2).
struct HelloBody {
  Ipv4Addr network_mask;
  std::uint16_t hello_interval = 10;  ///< seconds
  std::uint8_t options = kOptionE;
  std::uint8_t router_priority = 1;
  std::uint32_t dead_interval = 40;  ///< seconds
  Ipv4Addr designated_router;
  Ipv4Addr backup_designated_router;
  std::vector<RouterId> neighbors;  ///< recently seen neighbors

  friend bool operator==(const HelloBody&, const HelloBody&) = default;
};

/// Database Description body (§A.3.3).
struct DbdBody {
  std::uint16_t interface_mtu = 1500;
  std::uint8_t options = kOptionE;
  std::uint8_t flags = 0;  ///< I/M/MS
  std::uint32_t dd_sequence = 0;
  std::vector<LsaHeader> lsa_headers;

  bool init() const { return flags & kDbdFlagInit; }
  bool more() const { return flags & kDbdFlagMore; }
  bool master() const { return flags & kDbdFlagMs; }

  friend bool operator==(const DbdBody&, const DbdBody&) = default;
};

/// One Link State Request entry (§A.3.4).
struct LsRequestEntry {
  LsaType type = LsaType::kRouter;
  Ipv4Addr link_state_id;
  RouterId advertising_router;

  friend bool operator==(const LsRequestEntry&,
                         const LsRequestEntry&) = default;
};

struct LsRequestBody {
  std::vector<LsRequestEntry> requests;

  friend bool operator==(const LsRequestBody&,
                         const LsRequestBody&) = default;
};

/// Link State Update body (§A.3.5): full LSAs being flooded.
struct LsUpdateBody {
  std::vector<Lsa> lsas;

  friend bool operator==(const LsUpdateBody&, const LsUpdateBody&) = default;
};

/// Link State Acknowledgment body (§A.3.6): LSA headers being acked.
struct LsAckBody {
  std::vector<LsaHeader> lsa_headers;

  friend bool operator==(const LsAckBody&, const LsAckBody&) = default;
};

using PacketBody =
    std::variant<HelloBody, DbdBody, LsRequestBody, LsUpdateBody, LsAckBody>;

/// A complete OSPF packet. header.type must match the body alternative;
/// make_packet() enforces this.
struct OspfPacket {
  OspfHeader header;
  PacketBody body = HelloBody{};

  /// One-line human-readable summary for traces.
  std::string summary() const;
};

/// Builds a packet with a consistent header.type for the given body.
OspfPacket make_packet(RouterId router, AreaId area, PacketBody body);

/// Serializes `pkt`, computing length and checksum. For AuType 0/1 only;
/// AuType 2 packets need the key — use encode_md5.
std::vector<std::uint8_t> encode(const OspfPacket& pkt);

/// Serializes an AuType 2 packet (§D.4.3): no standard checksum, the auth
/// slot carries (key id, digest length 16, sequence number), and
/// MD5(packet || key padded to 16 bytes) is appended after the packet.
/// header.au_type, md5_key_id and md5_seq must be set by the caller.
std::vector<std::uint8_t> encode_md5(const OspfPacket& pkt,
                                     std::span<const std::uint8_t> key);

/// Verifies the trailing digest of an AuType 2 wire packet against `key`.
bool verify_md5(std::span<const std::uint8_t> wire,
                std::span<const std::uint8_t> key);

/// Parses and validates wire bytes: version, type, length, header checksum
/// and per-LSA Fletcher checksums must all be correct.
Result<OspfPacket> decode(std::span<const std::uint8_t> wire);

/// The wire type of an encoded packet without full decoding (first bytes),
/// or 0 if the buffer is too short. Used by taps that only need the type.
std::uint8_t peek_type(std::span<const std::uint8_t> wire);

}  // namespace nidkit::ospf
