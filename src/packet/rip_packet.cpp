#include "packet/rip_packet.hpp"

#include <sstream>

namespace nidkit::rip {

std::string to_string(Command c) {
  switch (c) {
    case Command::kRequest: return "Request";
    case Command::kResponse: return "Response";
  }
  return "?";
}

bool RipPacket::is_full_table_request() const {
  return command == Command::kRequest && entries.size() == 1 &&
         entries[0].afi == 0 && entries[0].metric == kInfinityMetric;
}

RipPacket make_full_table_request() {
  RipPacket pkt;
  pkt.command = Command::kRequest;
  RipEntry e;
  e.afi = 0;
  e.metric = kInfinityMetric;
  pkt.entries.push_back(e);
  return pkt;
}

std::vector<std::uint8_t> encode(const RipPacket& pkt) {
  ByteWriter w(4 + pkt.entries.size() * 20);
  w.u8(static_cast<std::uint8_t>(pkt.command));
  w.u8(pkt.version);
  w.u16(0);
  const bool v1 = pkt.version == 1;
  for (const auto& e : pkt.entries) {
    w.u16(e.afi);
    w.u16(v1 ? 0 : e.route_tag);  // must-be-zero in v1
    w.u32(e.prefix.value());
    w.u32(v1 ? 0 : e.mask.value());      // v1 carries no mask...
    w.u32(v1 ? 0 : e.next_hop.value());  // ...and no next hop
    w.u32(e.metric);
  }
  return w.take();
}

Result<RipPacket> decode(std::span<const std::uint8_t> wire) {
  if (wire.size() < 4) return fail("RIP packet shorter than header");
  if ((wire.size() - 4) % 20 != 0) return fail("ragged RIP entry list");
  ByteReader r(wire);
  RipPacket pkt;
  const std::uint8_t cmd = r.u8();
  pkt.version = r.u8();
  r.skip(2);
  if (cmd != 1 && cmd != 2) return fail("bad RIP command");
  pkt.command = static_cast<Command>(cmd);
  if (pkt.version != 1 && pkt.version != kRipVersion)
    return fail("unsupported RIP version");
  while (r.ok() && r.remaining() >= 20) {
    RipEntry e;
    e.afi = r.u16();
    e.route_tag = r.u16();
    e.prefix = Ipv4Addr{r.u32()};
    e.mask = Ipv4Addr{r.u32()};
    e.next_hop = Ipv4Addr{r.u32()};
    e.metric = r.u32();
    if (e.metric < 1 || e.metric > kInfinityMetric) {
      if (!(e.afi == 0))  // AFI-0 request entries legitimately carry 16
        return fail("RIP metric out of range");
    }
    pkt.entries.push_back(e);
  }
  if (!r.ok()) return fail("truncated RIP packet");
  // RFC 2453 §3.6 caps a message at 25 entries.
  if (pkt.entries.size() > 25) return fail("more than 25 RIP entries");
  return pkt;
}

std::string RipPacket::summary() const {
  std::ostringstream os;
  os << "RIP " << to_string(command) << " entries=" << entries.size();
  return os.str();
}

}  // namespace nidkit::rip
