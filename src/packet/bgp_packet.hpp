// BGP-4 wire format (RFC 4271 subset, 2-byte AS numbers).
//
// BGP is the third protocol in the toolkit, motivated directly by the
// paper's §1: the 2009 global slowdown was a non-interoperability in
// AS_PATH handling (a long path announced by one implementation made
// another reset its sessions repeatedly). The bgp module reproduces that
// class of bug and shows the causal miner flagging it.
//
// Modeled subset: OPEN / UPDATE / KEEPALIVE / NOTIFICATION, path
// attributes ORIGIN, AS_PATH (AS_SEQUENCE segments), NEXT_HOP, classic
// 16-bit AS numbers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.hpp"
#include "util/ip.hpp"
#include "util/result.hpp"

namespace nidkit::bgp {

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

std::string to_string(MessageType t);

inline constexpr std::uint8_t kBgpVersion = 4;
inline constexpr std::size_t kHeaderSize = 19;  // marker(16) len(2) type(1)
inline constexpr std::size_t kMaxMessageSize = 4096;

/// An IPv4 prefix in NLRI form.
struct Prefix {
  Ipv4Addr network;
  std::uint8_t length = 24;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;
  std::string to_string() const;
};

struct OpenMessage {
  std::uint8_t version = kBgpVersion;
  std::uint16_t my_as = 0;
  std::uint16_t hold_time = 90;
  Ipv4Addr bgp_identifier;

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

/// AS_PATH: a flat AS_SEQUENCE (AS_SET aggregation is not modeled). The
/// wire form splits sequences longer than 255 into multiple segments —
/// exactly the boundary the 2009 incident tripped over.
using AsPath = std::vector<std::uint16_t>;

struct UpdateMessage {
  std::vector<Prefix> withdrawn;
  /// Path attributes (present when NLRI is non-empty).
  AsPath as_path;
  Ipv4Addr next_hop;
  std::uint8_t origin = 0;  // IGP
  std::vector<Prefix> nlri;

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

struct NotificationMessage {
  std::uint8_t error_code = 0;
  std::uint8_t error_subcode = 0;
  std::vector<std::uint8_t> data;

  friend bool operator==(const NotificationMessage&,
                         const NotificationMessage&) = default;
};

/// RFC 4271 §4.5 error codes we use.
inline constexpr std::uint8_t kErrorUpdateMessage = 3;
inline constexpr std::uint8_t kSubcodeMalformedAsPath = 11;
inline constexpr std::uint8_t kErrorHoldTimerExpired = 4;
inline constexpr std::uint8_t kErrorCease = 6;

struct KeepaliveMessage {
  friend bool operator==(const KeepaliveMessage&,
                         const KeepaliveMessage&) = default;
};

using MessageBody = std::variant<OpenMessage, UpdateMessage,
                                 NotificationMessage, KeepaliveMessage>;

struct BgpMessage {
  MessageBody body = KeepaliveMessage{};

  MessageType type() const;
  std::string summary() const;
};

std::vector<std::uint8_t> encode(const BgpMessage& msg);
Result<BgpMessage> decode(std::span<const std::uint8_t> wire);

}  // namespace nidkit::bgp
