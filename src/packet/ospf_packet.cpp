#include "packet/ospf_packet.hpp"

#include <algorithm>
#include <sstream>

#include "util/checksum.hpp"
#include "util/md5.hpp"

namespace nidkit::ospf {

std::string to_string(PacketType t) {
  switch (t) {
    case PacketType::kHello: return "Hello";
    case PacketType::kDbd: return "DBD";
    case PacketType::kLsRequest: return "LSR";
    case PacketType::kLsUpdate: return "LSU";
    case PacketType::kLsAck: return "LSAck";
  }
  return "?";
}

std::string to_string(LsaType t) {
  switch (t) {
    case LsaType::kRouter: return "router-LSA";
    case LsaType::kNetwork: return "network-LSA";
    case LsaType::kSummaryNet: return "summary-LSA";
    case LsaType::kSummaryAsbr: return "asbr-summary-LSA";
    case LsaType::kExternal: return "external-LSA";
  }
  return "?";
}

namespace {

PacketType type_of(const PacketBody& body) {
  return std::visit(
      [](const auto& b) {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, HelloBody>) return PacketType::kHello;
        else if constexpr (std::is_same_v<B, DbdBody>) return PacketType::kDbd;
        else if constexpr (std::is_same_v<B, LsRequestBody>)
          return PacketType::kLsRequest;
        else if constexpr (std::is_same_v<B, LsUpdateBody>)
          return PacketType::kLsUpdate;
        else
          return PacketType::kLsAck;
      },
      body);
}

void encode_lsa_header(const LsaHeader& h, ByteWriter& w) {
  w.u16(h.age);
  w.u8(h.options);
  w.u8(static_cast<std::uint8_t>(h.type));
  w.u32(h.link_state_id.value());
  w.u32(h.advertising_router.value());
  w.i32(h.seq);
  w.u16(h.checksum);
  w.u16(h.length);
}

Result<LsaHeader> decode_lsa_header(ByteReader& r) {
  LsaHeader h;
  h.age = r.u16();
  h.options = r.u8();
  const std::uint8_t type = r.u8();
  h.link_state_id = Ipv4Addr{r.u32()};
  h.advertising_router = Ipv4Addr{r.u32()};
  h.seq = r.i32();
  h.checksum = r.u16();
  h.length = r.u16();
  if (!r.ok()) return fail("truncated LSA header");
  if (type < 1 || type > 5)
    return fail("unknown LSA type " + std::to_string(type));
  h.type = static_cast<LsaType>(type);
  return h;
}

void encode_body(const PacketBody& body, ByteWriter& w) {
  std::visit(
      [&w](const auto& b) {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, HelloBody>) {
          w.u32(b.network_mask.value());
          w.u16(b.hello_interval);
          w.u8(b.options);
          w.u8(b.router_priority);
          w.u32(b.dead_interval);
          w.u32(b.designated_router.value());
          w.u32(b.backup_designated_router.value());
          for (const auto& n : b.neighbors) w.u32(n.value());
        } else if constexpr (std::is_same_v<B, DbdBody>) {
          w.u16(b.interface_mtu);
          w.u8(b.options);
          w.u8(b.flags);
          w.u32(b.dd_sequence);
          for (const auto& h : b.lsa_headers) encode_lsa_header(h, w);
        } else if constexpr (std::is_same_v<B, LsRequestBody>) {
          for (const auto& req : b.requests) {
            w.u32(static_cast<std::uint32_t>(req.type));
            w.u32(req.link_state_id.value());
            w.u32(req.advertising_router.value());
          }
        } else if constexpr (std::is_same_v<B, LsUpdateBody>) {
          w.u32(static_cast<std::uint32_t>(b.lsas.size()));
          for (const auto& lsa : b.lsas) lsa.encode(w);
        } else {
          static_assert(std::is_same_v<B, LsAckBody>);
          for (const auto& h : b.lsa_headers) encode_lsa_header(h, w);
        }
      },
      body);
}

Result<PacketBody> decode_body(PacketType type,
                               std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  switch (type) {
    case PacketType::kHello: {
      HelloBody b;
      b.network_mask = Ipv4Addr{r.u32()};
      b.hello_interval = r.u16();
      b.options = r.u8();
      b.router_priority = r.u8();
      b.dead_interval = r.u32();
      b.designated_router = Ipv4Addr{r.u32()};
      b.backup_designated_router = Ipv4Addr{r.u32()};
      if (!r.ok()) return fail("truncated hello");
      if (r.remaining() % 4 != 0) return fail("ragged hello neighbor list");
      while (r.remaining() >= 4) b.neighbors.push_back(RouterId{r.u32()});
      return PacketBody{std::move(b)};
    }
    case PacketType::kDbd: {
      DbdBody b;
      b.interface_mtu = r.u16();
      b.options = r.u8();
      b.flags = r.u8();
      b.dd_sequence = r.u32();
      if (!r.ok()) return fail("truncated DBD");
      if (r.remaining() % kLsaHeaderSize != 0)
        return fail("ragged DBD header list");
      while (r.remaining() >= kLsaHeaderSize) {
        auto h = decode_lsa_header(r);
        if (!h.ok()) return fail(h.error());
        b.lsa_headers.push_back(h.value());
      }
      return PacketBody{std::move(b)};
    }
    case PacketType::kLsRequest: {
      LsRequestBody b;
      if (r.remaining() % 12 != 0) return fail("ragged LSR list");
      while (r.remaining() >= 12) {
        LsRequestEntry e;
        const std::uint32_t t = r.u32();
        e.link_state_id = Ipv4Addr{r.u32()};
        e.advertising_router = Ipv4Addr{r.u32()};
        if (t < 1 || t > 5) return fail("bad LSR type");
        e.type = static_cast<LsaType>(t);
        b.requests.push_back(e);
      }
      if (!r.ok()) return fail("truncated LSR");
      return PacketBody{std::move(b)};
    }
    case PacketType::kLsUpdate: {
      LsUpdateBody b;
      const std::uint32_t n = r.u32();
      if (!r.ok()) return fail("truncated LSU count");
      for (std::uint32_t i = 0; i < n; ++i) {
        auto lsa = Lsa::decode(r);
        if (!lsa.ok()) return fail(lsa.error());
        b.lsas.push_back(std::move(lsa).take());
      }
      if (r.remaining() != 0) return fail("trailing bytes after LSU");
      return PacketBody{std::move(b)};
    }
    case PacketType::kLsAck: {
      LsAckBody b;
      if (r.remaining() % kLsaHeaderSize != 0)
        return fail("ragged LSAck header list");
      while (r.remaining() >= kLsaHeaderSize) {
        auto h = decode_lsa_header(r);
        if (!h.ok()) return fail(h.error());
        b.lsa_headers.push_back(h.value());
      }
      return PacketBody{std::move(b)};
    }
  }
  return fail("unreachable packet type");
}

}  // namespace

OspfPacket make_packet(RouterId router, AreaId area, PacketBody body) {
  OspfPacket pkt;
  pkt.header.router_id = router;
  pkt.header.area_id = area;
  pkt.header.type = type_of(body);
  pkt.body = std::move(body);
  return pkt;
}

std::vector<std::uint8_t> encode(const OspfPacket& pkt) {
  ByteWriter w(64);
  w.u8(pkt.header.version);
  w.u8(static_cast<std::uint8_t>(pkt.header.type));
  w.u16(0);  // length, patched below
  w.u32(pkt.header.router_id.value());
  w.u32(pkt.header.area_id.value());
  w.u16(0);  // checksum, patched below
  w.u16(pkt.header.au_type);
  w.zeros(8);  // authentication field (header bytes 16-23), filled last
  encode_body(pkt.body, w);
  w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
  // §D.4: the checksum covers the whole packet with the authentication
  // field excluded — equivalently, with those 8 bytes zero (zeros add
  // nothing to a one's-complement sum). The buffer is in exactly that
  // state here.
  const std::uint16_t csum = internet_checksum(w.view());
  w.patch_u16(12, csum);
  // Only now does the password (AuType 1) land in the auth field.
  for (std::size_t i = 0; i < 8; ++i) w.data()[16 + i] = pkt.header.auth[i];
  return w.take();
}

namespace {

/// MD5 authentication input: the packet (auth field included) followed by
/// the secret padded with zeros to 16 bytes (§D.4.3).
std::array<std::uint8_t, 16> md5_digest_for(
    std::span<const std::uint8_t> packet, std::span<const std::uint8_t> key) {
  std::vector<std::uint8_t> input(packet.begin(), packet.end());
  std::array<std::uint8_t, 16> padded{};
  std::copy_n(key.begin(), std::min<std::size_t>(16, key.size()),
              padded.begin());
  input.insert(input.end(), padded.begin(), padded.end());
  return md5(input);
}

}  // namespace

std::vector<std::uint8_t> encode_md5(const OspfPacket& pkt,
                                     std::span<const std::uint8_t> key) {
  ByteWriter w(80);
  w.u8(pkt.header.version);
  w.u8(static_cast<std::uint8_t>(pkt.header.type));
  w.u16(0);  // length, patched below
  w.u32(pkt.header.router_id.value());
  w.u32(pkt.header.area_id.value());
  w.u16(0);  // checksum: not used with cryptographic authentication
  w.u16(2);  // AuType 2
  // Auth slot: 0(2) key-id(1) auth-data-length(1) crypto-sequence(4).
  w.u16(0);
  w.u8(pkt.header.md5_key_id);
  w.u8(16);
  w.u32(pkt.header.md5_seq);
  encode_body(pkt.body, w);
  // Length covers the packet but NOT the trailing digest.
  w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
  const auto digest = md5_digest_for(w.view(), key);
  w.bytes(digest);
  return w.take();
}

bool verify_md5(std::span<const std::uint8_t> wire,
                std::span<const std::uint8_t> key) {
  if (wire.size() < kOspfHeaderSize + 16) return false;
  const auto packet = wire.subspan(0, wire.size() - 16);
  const auto digest = md5_digest_for(packet, key);
  return std::equal(digest.begin(), digest.end(), wire.end() - 16);
}

Result<OspfPacket> decode(std::span<const std::uint8_t> wire) {
  if (wire.size() < kOspfHeaderSize) return fail("packet shorter than header");
  ByteReader r(wire);
  OspfPacket pkt;
  pkt.header.version = r.u8();
  const std::uint8_t type = r.u8();
  pkt.header.length = r.u16();
  pkt.header.router_id = RouterId{r.u32()};
  pkt.header.area_id = AreaId{r.u32()};
  pkt.header.checksum = r.u16();
  pkt.header.au_type = r.u16();

  if (pkt.header.version != kOspfVersion) return fail("bad OSPF version");
  if (type < 1 || type > 5) return fail("bad packet type");
  pkt.header.type = static_cast<PacketType>(type);
  if (pkt.header.au_type > 2) return fail("unsupported AuType");

  if (pkt.header.au_type == 2) {
    // Cryptographic authentication (§D.4.3): the 16-byte digest trails the
    // packet, the length field excludes it, and there is no standard
    // checksum. Digest verification needs the key: the router calls
    // verify_md5; the codec validates framing and surfaces the fields.
    if (static_cast<std::size_t>(pkt.header.length) + 16 != wire.size())
      return fail("length field does not match md5 frame size");
    if (pkt.header.length < kOspfHeaderSize)
      return fail("length shorter than header");
    ByteReader auth(wire.subspan(16, 8));
    auth.skip(2);
    pkt.header.md5_key_id = auth.u8();
    const std::uint8_t digest_len = auth.u8();
    pkt.header.md5_seq = auth.u32();
    if (digest_len != 16) return fail("bad md5 digest length");
    auto md5_body = decode_body(
        pkt.header.type,
        wire.subspan(kOspfHeaderSize, pkt.header.length - kOspfHeaderSize));
    if (!md5_body.ok()) return fail(md5_body.error());
    pkt.body = std::move(md5_body).take();
    if (auto* lsu = std::get_if<LsUpdateBody>(&pkt.body)) {
      for (const auto& lsa : lsu->lsas)
        if (!lsa.checksum_ok()) return fail("bad LSA Fletcher checksum");
    }
    return pkt;
  }

  // Password verification is the receiver's policy decision (the router
  // knows its configured key); the codec only surfaces the field.
  std::copy_n(wire.begin() + 16, 8, pkt.header.auth.begin());
  if (pkt.header.length != wire.size())
    return fail("length field does not match frame size");
  if (pkt.header.length < kOspfHeaderSize)
    return fail("length shorter than header");

  // §D.4: verify the checksum with the authentication field excluded —
  // zero header bytes 16-23 and sum the whole packet.
  std::vector<std::uint8_t> checked(wire.begin(), wire.end());
  std::fill(checked.begin() + 16, checked.begin() + 24, 0);
  if (!internet_checksum_ok(checked)) return fail("bad header checksum");

  const auto raw_body = wire.subspan(kOspfHeaderSize);
  auto body = decode_body(pkt.header.type, raw_body);
  if (!body.ok()) return fail(body.error());
  pkt.body = std::move(body).take();

  // Per-LSA integrity: receivers discard LSAs with bad Fletcher checksums
  // (§13 step 1); we reject the whole update to surface corruption loudly.
  if (auto* lsu = std::get_if<LsUpdateBody>(&pkt.body)) {
    for (const auto& lsa : lsu->lsas)
      if (!lsa.checksum_ok()) return fail("bad LSA Fletcher checksum");
  }
  return pkt;
}

std::uint8_t peek_type(std::span<const std::uint8_t> wire) {
  return wire.size() >= 2 ? wire[1] : 0;
}

std::string OspfPacket::summary() const {
  std::ostringstream os;
  os << to_string(header.type) << " from " << header.router_id.to_string();
  std::visit(
      [&os](const auto& b) {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, HelloBody>) {
          os << " nbrs=" << b.neighbors.size();
        } else if constexpr (std::is_same_v<B, DbdBody>) {
          os << " flags=" << (b.init() ? "I" : "") << (b.more() ? "M" : "")
             << (b.master() ? "MS" : "") << " seq=" << b.dd_sequence
             << " hdrs=" << b.lsa_headers.size();
        } else if constexpr (std::is_same_v<B, LsRequestBody>) {
          os << " reqs=" << b.requests.size();
        } else if constexpr (std::is_same_v<B, LsUpdateBody>) {
          os << " lsas=" << b.lsas.size();
        } else {
          os << " acks=" << b.lsa_headers.size();
        }
      },
      body);
  return os.str();
}

}  // namespace nidkit::ospf
