// Link State Advertisements: structures, wire codec, freshness ordering.
//
// LSAs are the unit of OSPF's link-state database. Their wire format
// (RFC 2328 §A.4) is the formally-specified part of the standard the
// paper's technique depends on; this codec implements it bit-exactly,
// including the Fletcher checksum over the age-less LSA.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "packet/ospf_types.hpp"
#include "util/bytes.hpp"
#include "util/ip.hpp"
#include "util/result.hpp"

namespace nidkit::ospf {

/// The 20-byte LSA header (§A.4.1). Uniquely identifies an LSA instance by
/// (type, link_state_id, advertising_router) + (seq, checksum, age).
struct LsaHeader {
  std::uint16_t age = 0;  ///< seconds since origination, capped at MaxAge
  std::uint8_t options = kOptionE;
  LsaType type = LsaType::kRouter;
  Ipv4Addr link_state_id;
  RouterId advertising_router;
  std::int32_t seq = kInitialSequenceNumber;
  std::uint16_t checksum = 0;
  std::uint16_t length = 0;  ///< total LSA length including header

  /// The database key (type, id, adv router) — identifies the LSA, not the
  /// instance.
  friend bool same_lsa(const LsaHeader& a, const LsaHeader& b) {
    return a.type == b.type && a.link_state_id == b.link_state_id &&
           a.advertising_router == b.advertising_router;
  }

  std::string to_string() const;

  friend bool operator==(const LsaHeader&, const LsaHeader&) = default;
};

/// Router-LSA link descriptions (§A.4.2).
enum class RouterLinkType : std::uint8_t {
  kPointToPoint = 1,  ///< link_id = neighbor router id
  kTransit = 2,       ///< link_id = DR interface address
  kStub = 3,          ///< link_id = network number
  kVirtual = 4,
};

struct RouterLink {
  Ipv4Addr link_id;
  Ipv4Addr link_data;
  RouterLinkType type = RouterLinkType::kPointToPoint;
  std::uint16_t metric = 1;

  friend bool operator==(const RouterLink&, const RouterLink&) = default;
};

struct RouterLsaBody {
  std::uint8_t flags = 0;  ///< V/E/B bits
  std::vector<RouterLink> links;

  friend bool operator==(const RouterLsaBody&, const RouterLsaBody&) = default;
};

struct NetworkLsaBody {
  Ipv4Addr network_mask;
  std::vector<RouterId> attached_routers;

  friend bool operator==(const NetworkLsaBody&,
                         const NetworkLsaBody&) = default;
};

struct SummaryLsaBody {
  Ipv4Addr network_mask;
  std::uint32_t metric = 0;  ///< 24-bit on the wire

  friend bool operator==(const SummaryLsaBody&,
                         const SummaryLsaBody&) = default;
};

struct ExternalLsaBody {
  Ipv4Addr network_mask;
  bool type2 = true;  ///< E bit: type-2 external metric
  std::uint32_t metric = 1;
  Ipv4Addr forwarding_address;
  std::uint32_t external_route_tag = 0;

  friend bool operator==(const ExternalLsaBody&,
                         const ExternalLsaBody&) = default;
};

using LsaBody = std::variant<RouterLsaBody, NetworkLsaBody, SummaryLsaBody,
                             ExternalLsaBody>;

/// A complete LSA. `header.length` and `header.checksum` are recomputed by
/// finalize(); decoded LSAs carry the values observed on the wire.
struct Lsa {
  LsaHeader header;
  LsaBody body = RouterLsaBody{};

  /// Recomputes length and Fletcher checksum from the current body.
  /// Must be called after any mutation and before encoding.
  void finalize();

  /// Serializes to wire bytes (finalize() must have run or the LSA must be
  /// a faithfully decoded one).
  void encode(ByteWriter& w) const;

  /// Decodes one LSA. Verifies structural consistency; checksum validity
  /// is reported separately via checksum_ok so chaos tests can observe
  /// corrupted-but-parseable LSAs.
  static Result<Lsa> decode(ByteReader& r);

  /// Recomputes the Fletcher checksum and compares with header.checksum.
  bool checksum_ok() const;

  friend bool operator==(const Lsa&, const Lsa&) = default;
};

/// RFC 2328 §13.1: which instance is newer?
/// Returns >0 if `a` is newer, <0 if `b` is newer, 0 if the same instance.
int compare_instances(const LsaHeader& a, const LsaHeader& b);

}  // namespace nidkit::ospf
