#include "packet/bgp_packet.hpp"

#include <sstream>

namespace nidkit::bgp {

std::string to_string(MessageType t) {
  switch (t) {
    case MessageType::kOpen: return "OPEN";
    case MessageType::kUpdate: return "UPDATE";
    case MessageType::kNotification: return "NOTIFICATION";
    case MessageType::kKeepalive: return "KEEPALIVE";
  }
  return "?";
}

std::string Prefix::to_string() const {
  return network.to_string() + "/" + std::to_string(length);
}

MessageType BgpMessage::type() const {
  return std::visit(
      [](const auto& b) {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, OpenMessage>)
          return MessageType::kOpen;
        else if constexpr (std::is_same_v<B, UpdateMessage>)
          return MessageType::kUpdate;
        else if constexpr (std::is_same_v<B, NotificationMessage>)
          return MessageType::kNotification;
        else
          return MessageType::kKeepalive;
      },
      body);
}

namespace {

std::size_t prefix_octets(std::uint8_t bits) { return (bits + 7) / 8; }

void encode_prefix(const Prefix& p, ByteWriter& w) {
  w.u8(p.length);
  const std::uint32_t v = p.network.value();
  for (std::size_t i = 0; i < prefix_octets(p.length); ++i)
    w.u8(static_cast<std::uint8_t>(v >> (24 - 8 * i)));
}

Result<Prefix> decode_prefix(ByteReader& r) {
  Prefix p;
  p.length = r.u8();
  if (p.length > 32) return fail("prefix length > 32");
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < prefix_octets(p.length); ++i)
    v |= std::uint32_t{r.u8()} << (24 - 8 * i);
  if (!r.ok()) return fail("truncated prefix");
  p.network = Ipv4Addr{v};
  return p;
}

void encode_body(const MessageBody& body, ByteWriter& w) {
  std::visit(
      [&w](const auto& b) {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, OpenMessage>) {
          w.u8(b.version);
          w.u16(b.my_as);
          w.u16(b.hold_time);
          w.u32(b.bgp_identifier.value());
          w.u8(0);  // no optional parameters
        } else if constexpr (std::is_same_v<B, UpdateMessage>) {
          ByteWriter withdrawn;
          for (const auto& p : b.withdrawn) encode_prefix(p, withdrawn);
          w.u16(static_cast<std::uint16_t>(withdrawn.size()));
          w.bytes(withdrawn.view());

          ByteWriter attrs;
          if (!b.nlri.empty()) {
            // ORIGIN: well-known mandatory, flags 0x40.
            attrs.u8(0x40);
            attrs.u8(1);
            attrs.u8(1);
            attrs.u8(b.origin);
            // AS_PATH: AS_SEQUENCE segments of at most 255 ASes each (the
            // wire segment count field is one byte — the boundary the 2009
            // incident tripped over).
            ByteWriter path;
            std::size_t i = 0;
            while (i < b.as_path.size()) {
              const std::size_t n = std::min<std::size_t>(
                  255, b.as_path.size() - i);
              path.u8(2);  // AS_SEQUENCE
              path.u8(static_cast<std::uint8_t>(n));
              for (std::size_t k = 0; k < n; ++k) path.u16(b.as_path[i + k]);
              i += n;
            }
            if (path.size() > 255) {
              attrs.u8(0x50);  // extended length
              attrs.u8(2);
              attrs.u16(static_cast<std::uint16_t>(path.size()));
            } else {
              attrs.u8(0x40);
              attrs.u8(2);
              attrs.u8(static_cast<std::uint8_t>(path.size()));
            }
            attrs.bytes(path.view());
            // NEXT_HOP.
            attrs.u8(0x40);
            attrs.u8(3);
            attrs.u8(4);
            attrs.u32(b.next_hop.value());
          }
          w.u16(static_cast<std::uint16_t>(attrs.size()));
          w.bytes(attrs.view());
          for (const auto& p : b.nlri) encode_prefix(p, w);
        } else if constexpr (std::is_same_v<B, NotificationMessage>) {
          w.u8(b.error_code);
          w.u8(b.error_subcode);
          w.bytes(b.data);
        } else {
          static_assert(std::is_same_v<B, KeepaliveMessage>);
        }
      },
      body);
}

Result<MessageBody> decode_body(MessageType type,
                                std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  switch (type) {
    case MessageType::kOpen: {
      OpenMessage m;
      m.version = r.u8();
      m.my_as = r.u16();
      m.hold_time = r.u16();
      m.bgp_identifier = Ipv4Addr{r.u32()};
      const std::uint8_t opt_len = r.u8();
      r.skip(opt_len);
      if (!r.ok() || r.remaining() != 0) return fail("malformed OPEN");
      if (m.version != kBgpVersion) return fail("unsupported BGP version");
      return MessageBody{m};
    }
    case MessageType::kUpdate: {
      UpdateMessage m;
      const std::uint16_t withdrawn_len = r.u16();
      if (!r.ok()) return fail("truncated UPDATE");
      {
        auto bytes = r.bytes(withdrawn_len);
        if (!r.ok()) return fail("truncated withdrawn routes");
        ByteReader wr(bytes);
        while (wr.remaining() > 0) {
          auto p = decode_prefix(wr);
          if (!p.ok()) return fail(p.error());
          m.withdrawn.push_back(p.value());
        }
      }
      const std::uint16_t attrs_len = r.u16();
      if (!r.ok()) return fail("truncated UPDATE attributes length");
      bool have_as_path = false;
      bool have_next_hop = false;
      {
        auto bytes = r.bytes(attrs_len);
        if (!r.ok()) return fail("truncated path attributes");
        ByteReader ar(bytes);
        while (ar.remaining() > 0) {
          const std::uint8_t flags = ar.u8();
          const std::uint8_t type_code = ar.u8();
          const std::uint16_t len =
              (flags & 0x10) ? ar.u16() : ar.u8();  // extended length bit
          auto value = ar.bytes(len);
          if (!ar.ok()) return fail("truncated path attribute");
          ByteReader vr(value);
          switch (type_code) {
            case 1:  // ORIGIN
              m.origin = vr.u8();
              break;
            case 2: {  // AS_PATH
              have_as_path = true;
              while (vr.remaining() > 0) {
                const std::uint8_t seg_type = vr.u8();
                const std::uint8_t count = vr.u8();
                if (seg_type != 1 && seg_type != 2)
                  return fail("bad AS_PATH segment type");
                for (std::uint8_t i = 0; i < count; ++i)
                  m.as_path.push_back(vr.u16());
                if (!vr.ok()) return fail("truncated AS_PATH");
              }
              break;
            }
            case 3:  // NEXT_HOP
              have_next_hop = true;
              m.next_hop = Ipv4Addr{vr.u32()};
              break;
            default:
              break;  // optional attributes ignored
          }
          if (!vr.ok()) return fail("malformed path attribute");
        }
      }
      while (r.ok() && r.remaining() > 0) {
        auto p = decode_prefix(r);
        if (!p.ok()) return fail(p.error());
        m.nlri.push_back(p.value());
      }
      if (!r.ok()) return fail("truncated NLRI");
      if (!m.nlri.empty() && (!have_as_path || !have_next_hop))
        return fail("UPDATE with NLRI lacks mandatory attributes");
      return MessageBody{std::move(m)};
    }
    case MessageType::kNotification: {
      NotificationMessage m;
      m.error_code = r.u8();
      m.error_subcode = r.u8();
      if (!r.ok()) return fail("truncated NOTIFICATION");
      auto rest = r.bytes(r.remaining());
      m.data.assign(rest.begin(), rest.end());
      return MessageBody{std::move(m)};
    }
    case MessageType::kKeepalive: {
      if (r.remaining() != 0) return fail("KEEPALIVE with body");
      return MessageBody{KeepaliveMessage{}};
    }
  }
  return fail("unreachable message type");
}

}  // namespace

std::vector<std::uint8_t> encode(const BgpMessage& msg) {
  ByteWriter w(64);
  for (int i = 0; i < 16; ++i) w.u8(0xff);  // marker
  w.u16(0);                                 // length, patched below
  w.u8(static_cast<std::uint8_t>(msg.type()));
  encode_body(msg.body, w);
  w.patch_u16(16, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

Result<BgpMessage> decode(std::span<const std::uint8_t> wire) {
  if (wire.size() < kHeaderSize) return fail("shorter than BGP header");
  if (wire.size() > kMaxMessageSize) return fail("message exceeds 4096");
  for (std::size_t i = 0; i < 16; ++i)
    if (wire[i] != 0xff) return fail("bad marker");
  ByteReader r(wire.subspan(16));
  const std::uint16_t length = r.u16();
  const std::uint8_t type = r.u8();
  if (length != wire.size()) return fail("length field mismatch");
  if (type < 1 || type > 4) return fail("bad message type");
  auto body = decode_body(static_cast<MessageType>(type),
                          wire.subspan(kHeaderSize));
  if (!body.ok()) return fail(body.error());
  BgpMessage msg;
  msg.body = std::move(body).take();
  return msg;
}

std::string BgpMessage::summary() const {
  std::ostringstream os;
  os << to_string(type());
  std::visit(
      [&os](const auto& b) {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, OpenMessage>) {
          os << " as=" << b.my_as << " id=" << b.bgp_identifier.to_string();
        } else if constexpr (std::is_same_v<B, UpdateMessage>) {
          os << " nlri=" << b.nlri.size() << " withdrawn=" << b.withdrawn.size()
             << " path_len=" << b.as_path.size();
        } else if constexpr (std::is_same_v<B, NotificationMessage>) {
          os << " code=" << int(b.error_code) << "/" << int(b.error_subcode);
        }
      },
      body);
  return os.str();
}

}  // namespace nidkit::bgp
