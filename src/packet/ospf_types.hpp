// OSPFv2 protocol constants (RFC 2328).
#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace nidkit::ospf {

/// OSPF packet types, RFC 2328 §4.3 (wire numbering).
///
/// Note: the paper's Table 1 presents types in the order Hello, DBD,
/// LS *Update*, LS *Request*, LS Ack — i.e. it swaps the RFC's 3/4. The
/// wire format here uses RFC numbering; the table renderer in bench/
/// applies the paper's presentation order.
enum class PacketType : std::uint8_t {
  kHello = 1,
  kDbd = 2,       // Database Description
  kLsRequest = 3,
  kLsUpdate = 4,
  kLsAck = 5,
};

inline constexpr int kNumPacketTypes = 5;

std::string to_string(PacketType t);

/// LS advertisement types, RFC 2328 §4.3.
enum class LsaType : std::uint8_t {
  kRouter = 1,
  kNetwork = 2,
  kSummaryNet = 3,
  kSummaryAsbr = 4,
  kExternal = 5,
};

std::string to_string(LsaType t);

/// Options field bits (§A.2). We model E (external routing capability).
inline constexpr std::uint8_t kOptionE = 0x02;

/// DBD flags (§A.3.3).
inline constexpr std::uint8_t kDbdFlagMs = 0x01;    ///< Master/Slave
inline constexpr std::uint8_t kDbdFlagMore = 0x02;  ///< More
inline constexpr std::uint8_t kDbdFlagInit = 0x04;  ///< Init

/// Architectural constants (§B), in simulation time units.
inline constexpr std::uint16_t kMaxAgeSeconds = 3600;          // MaxAge
inline constexpr std::uint16_t kMaxAgeDiffSeconds = 900;       // MaxAgeDiff
inline constexpr std::uint16_t kMinLsArrivalMs = 1000;         // MinLSArrival
inline constexpr std::int32_t kInitialSequenceNumber = static_cast<std::int32_t>(0x80000001);
inline constexpr std::int32_t kMaxSequenceNumber = 0x7fffffff;
inline constexpr std::uint32_t kLsInfinity = 0xffffff;

/// OSPF protocol number in the IP header.
inline constexpr std::uint8_t kIpProtoOspf = 89;

inline constexpr std::uint8_t kOspfVersion = 2;

/// Sizes of fixed wire structures (bytes).
inline constexpr std::size_t kOspfHeaderSize = 24;
inline constexpr std::size_t kLsaHeaderSize = 20;

}  // namespace nidkit::ospf
