// Chaos controller: the toolkit's Pumba.
//
// The paper introduces its TDelay on every interface with the Pumba chaos
// testing tool (netem under the hood). ChaosController provides the same
// operations against the simulator's fault models: fixed delay on all
// segments, plus scheduled one-shot or windowed rules (delay, jitter, loss,
// duplication, reordering, link cuts) for failure-injection tests.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/network.hpp"

namespace nidkit::netsim {

class ChaosController {
 public:
  explicit ChaosController(Network& net) : net_(net) {}

  /// Applies the paper's TDelay: a fixed one-way delay on every segment,
  /// effective immediately.
  void set_delay_all(SimDuration delay);

  /// Sets delay + uniform jitter on one segment.
  void set_delay(SegmentId segment, SimDuration delay,
                 SimDuration jitter = SimDuration{0});

  void set_loss(SegmentId segment, double probability);
  void set_duplicate(SegmentId segment, double probability);
  void set_reorder(SegmentId segment, double probability,
                   SimDuration extra_delay);

  /// Cuts a segment (all frames dropped) / restores it.
  void cut(SegmentId segment);
  void restore(SegmentId segment);

  /// Schedules `fault` to replace the segment's model during
  /// [start, start+duration), restoring the previous model afterwards.
  /// Mirrors Pumba's `--duration` flag.
  void schedule_window(SegmentId segment, SimTime start, SimDuration duration,
                       FaultModel fault);

 private:
  Network& net_;
};

}  // namespace nidkit::netsim
