// Virtual network: nodes, interfaces, point-to-point links and broadcast
// LANs, with per-segment fault models.
//
// This module replaces the paper's Docker containers + virtual links. It is
// protocol-agnostic: routers hand it encoded byte frames and receive byte
// frames; the only IP-level semantics modeled are unicast vs multicast
// delivery (which OSPF relies on) and per-segment delay/jitter/loss/
// duplication/reordering (which Pumba injects in the paper's testbed).
//
// Every frame that enters or leaves a node's interface is reported to an
// optional tap callback — the simulator's tcpdump.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "netsim/simulator.hpp"
#include "util/ip.hpp"
#include "util/rng.hpp"
#include "util/shared_bytes.hpp"
#include "util/time.hpp"

namespace nidkit::netsim {

using NodeId = std::uint32_t;
using SegmentId = std::uint32_t;
using IfaceIndex = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// An L3 datagram as observed on a segment. We do not serialize the IPv4
/// header itself (the technique never mines IP fields); src/dst/protocol
/// carry the addressing a capture would show, and `payload` is the real
/// encoded routing-protocol packet.
struct Frame {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t protocol = 0;  ///< IP protocol number (89 = OSPF, 17 = UDP).
  /// Encoded once per transmission, then shared by refcount across every
  /// LAN fan-out delivery, in-flight delivery closure, and trace record —
  /// copying a Frame never copies the wire bytes.
  util::SharedBytes payload;

  /// Unique id assigned by Network::send (never 0). LAN fan-out deliveries
  /// of one transmission share the id.
  std::uint64_t id = 0;
  /// Ground-truth provenance: the id of the received frame whose processing
  /// caused this send, or 0 for spontaneous (timer-driven) sends. Set by
  /// the protocol engines; invisible to the black-box miner, but used to
  /// score the miner's precision/recall (see bench/fig_tdelay_sweep).
  std::uint64_t caused_by = 0;
};

/// Mutable per-segment fault model, the netem/Pumba equivalent.
/// ChaosController rewrites these fields at runtime.
struct FaultModel {
  SimDuration delay{0};          ///< fixed one-way delay (the paper's TDelay)
  SimDuration jitter{0};         ///< uniform extra delay in [0, jitter]
  double loss = 0.0;             ///< drop probability per frame
  double duplicate = 0.0;        ///< duplication probability per frame
  double reorder = 0.0;          ///< probability of `reorder_extra` delay
  SimDuration reorder_extra{0};  ///< extra delay applied on reorder
  std::int64_t bytes_per_sec = 0;  ///< serialization rate; 0 = infinite
  bool down = false;             ///< segment cut (all frames dropped)
  /// Enforce in-order delivery per receiver even under jitter (models a
  /// reliable, ordered transport such as the TCP under BGP). Off by
  /// default: plain IP links do reorder under jitter, as netem does.
  bool fifo = false;
};

/// Direction of a tapped frame relative to the node.
enum class Direction { kSend, kRecv };

/// One observation delivered to the packet tap.
struct TapEvent {
  SimTime time;
  NodeId node;
  IfaceIndex iface;
  SegmentId segment;
  Direction direction;
  const Frame* frame;
};

/// A node interface: its attachment point plus IP addressing.
struct Interface {
  SegmentId segment = 0;
  Ipv4Addr address;
  std::uint8_t prefix_len = 30;
};

class Network {
 public:
  /// Frame arrival callback: (interface index, frame). Installed once per
  /// node by its protocol stack.
  using ReceiveHandler = std::function<void(IfaceIndex, const Frame&)>;
  using Tap = std::function<void(const TapEvent&)>;

  Network(Simulator& sim, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Returns the network to its just-constructed state with a fresh rng
  /// seed. Node and segment storage is retained and reused by subsequent
  /// add_node/add_p2p/add_lan calls, so rebuilding the same (or a smaller)
  /// topology allocates nothing: inner vectors keep their capacity and
  /// per-segment rngs are re-forked in the same order a fresh Network
  /// would fork them. The tap and all receive handlers are dropped.
  void reset(std::uint64_t seed);

  NodeId add_node(std::string name);

  /// Connects two nodes with a point-to-point link, creating one interface
  /// on each. Addresses are assigned from a fresh /30.
  SegmentId add_p2p(NodeId a, NodeId b);

  /// Connects `members` to a broadcast LAN, one interface each, addressed
  /// from a fresh /24.
  SegmentId add_lan(std::span<const NodeId> members);

  void set_receive_handler(NodeId node, ReceiveHandler handler);
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Transmits a frame out of `iface`. Unicast destinations deliver to the
  /// matching attachment only; any 224.0.0.0/4 destination delivers to
  /// every other attachment on the segment.
  void send(NodeId node, IfaceIndex iface, Frame frame);

  /// The mutable fault model of a segment (the chaos controller's handle).
  FaultModel& fault(SegmentId segment);
  const FaultModel& fault(SegmentId segment) const;

  std::size_t node_count() const { return live_nodes_; }
  std::size_t segment_count() const { return live_segments_; }
  const std::string& node_name(NodeId node) const;
  std::size_t iface_count(NodeId node) const;
  const Interface& iface(NodeId node, IfaceIndex idx) const;
  bool segment_is_lan(SegmentId segment) const;

  /// The node on the far side of a point-to-point segment, or kInvalidNode
  /// for LANs.
  NodeId p2p_peer(SegmentId segment, NodeId self) const;

  /// All (node, iface) attachments of a segment.
  struct Attachment {
    NodeId node;
    IfaceIndex iface;
    Ipv4Addr address;
    SimTime last_arrival{0};  ///< FIFO ordering watermark
  };
  const std::vector<Attachment>& attachments(SegmentId segment) const;

  Simulator& sim() { return sim_; }

  /// Frames dropped by loss or down segments since construction.
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  /// Extra deliveries injected by the duplication fault model.
  std::uint64_t frames_duplicated() const { return frames_duplicated_; }
  /// Deliveries that drew the reorder penalty (chaos-delayed frames).
  std::uint64_t frames_reorder_delayed() const {
    return frames_reorder_delayed_;
  }

 private:
  struct NodeState {
    std::string name;
    std::vector<Interface> ifaces;
    ReceiveHandler on_receive;
  };
  enum class SegmentKind { kP2p, kLan };
  struct SegmentState {
    SegmentKind kind;
    std::vector<Attachment> attached;
    FaultModel fault;
    Rng rng;
    SimTime tx_free_at{0};  ///< next instant the "wire" is idle (bandwidth)
  };

  IfaceIndex attach(NodeId node, SegmentId segment, Ipv4Addr addr,
                    std::uint8_t prefix_len);
  void deliver(SegmentId segment, Attachment& to, const Frame& frame,
               SimDuration extra);
  /// Reuses the slot past the live watermark (or appends) for a new
  /// segment; forks the network rng for it either way.
  SegmentState& new_segment(SegmentKind kind);

  Simulator& sim_;
  Rng rng_;
  /// Element storage outlives reset(): only the first live_nodes_ /
  /// live_segments_ elements are current; the rest are retained capacity.
  std::vector<NodeState> nodes_;
  std::vector<SegmentState> segments_;
  std::size_t live_nodes_ = 0;
  std::size_t live_segments_ = 0;
  Tap tap_;
  std::uint32_t next_subnet_ = 0;
  std::uint64_t next_frame_id_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  std::uint64_t frames_reorder_delayed_ = 0;
};

}  // namespace nidkit::netsim
