#include "netsim/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "obs/obs.hpp"

namespace nidkit::netsim {

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.push_back(TimerSlot{});
  // The freelist can never hold more entries than the slab has slots, so
  // matching its capacity here keeps release_slot allocation-free even
  // when every in-flight timer drains back at once.
  free_slots_.reserve(slots_.capacity());
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  auto& s = slots_[slot];
  ++s.generation;  // invalidate outstanding handles
  s.cancelled = false;
  free_slots_.push_back(slot);
}

TimerHandle Simulator::schedule_at(SimTime when, Action action) {
  assert(when >= now_ && "cannot schedule into the past");
  const std::uint32_t slot = acquire_slot();
  const std::uint32_t generation = slots_[slot].generation;
  heap_.push_back(Event{when, next_seq_++, slot, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  obs::count(obs::Hot::kTimersScheduled);
  return TimerHandle{this, slot, generation};
}

TimerHandle Simulator::schedule(SimDuration delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    const bool cancelled = slots_[ev.slot].cancelled;
    release_slot(ev.slot);
    if (cancelled) continue;
    now_ = ev.when;
    ++executed_;
    obs::count(obs::Hot::kEventsExecuted);
    ev.action();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime deadline) {
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (top.when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace nidkit::netsim
