#include "netsim/simulator.hpp"

#include <cassert>

namespace nidkit::netsim {

TimerHandle Simulator::schedule_at(SimTime when, Action action) {
  assert(when >= now_ && "cannot schedule into the past");
  auto state = std::make_shared<TimerState>();
  queue_.push(Event{when, next_seq_++, std::move(action), state});
  return TimerHandle{std::move(state)};
}

TimerHandle Simulator::schedule(SimDuration delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied out then popped.
    Event ev = queue_.top();
    queue_.pop();
    if (ev.cancelled->cancelled) continue;
    now_ = ev.when;
    ++executed_;
    ev.action();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace nidkit::netsim
