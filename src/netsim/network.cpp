#include "netsim/network.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace nidkit::netsim {

namespace {
bool is_multicast(Ipv4Addr addr) {
  return (addr.value() & 0xf0000000u) == 0xe0000000u;
}
}  // namespace

Network::Network(Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

void Network::reset(std::uint64_t seed) {
  for (std::size_t i = 0; i < live_nodes_; ++i) {
    nodes_[i].ifaces.clear();
    nodes_[i].on_receive = nullptr;
  }
  for (std::size_t i = 0; i < live_segments_; ++i)
    segments_[i].attached.clear();
  live_nodes_ = 0;
  live_segments_ = 0;
  tap_ = nullptr;
  rng_ = Rng(seed);
  next_subnet_ = 0;
  next_frame_id_ = 0;
  frames_dropped_ = 0;
  frames_delivered_ = 0;
  frames_duplicated_ = 0;
  frames_reorder_delayed_ = 0;
}

NodeId Network::add_node(std::string name) {
  if (live_nodes_ < nodes_.size()) {
    // Reuse the retired slot: the name assignment stays inside the small
    // string buffer for harness-style names, and the cleared iface vector
    // keeps its capacity.
    nodes_[live_nodes_].name = std::move(name);
  } else {
    nodes_.push_back(NodeState{std::move(name), {}, nullptr});
  }
  return static_cast<NodeId>(live_nodes_++);
}

Network::SegmentState& Network::new_segment(SegmentKind kind) {
  if (live_segments_ < segments_.size()) {
    SegmentState& seg = segments_[live_segments_];
    seg.kind = kind;
    seg.fault = FaultModel{};
    seg.rng = rng_.fork();
    seg.tx_free_at = SimTime{0};
    ++live_segments_;
    return seg;
  }
  segments_.push_back(SegmentState{kind, {}, FaultModel{}, rng_.fork(), {}});
  ++live_segments_;
  return segments_.back();
}

IfaceIndex Network::attach(NodeId node, SegmentId segment, Ipv4Addr addr,
                           std::uint8_t prefix_len) {
  auto& ns = nodes_.at(node);
  ns.ifaces.push_back(Interface{segment, addr, prefix_len});
  const auto idx = static_cast<IfaceIndex>(ns.ifaces.size() - 1);
  segments_.at(segment).attached.push_back(Attachment{node, idx, addr});
  return idx;
}

SegmentId Network::add_p2p(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("p2p link endpoints must differ");
  // Subnets are carved from 10.0.0.0/8: each segment gets 10.x.y.0.
  const std::uint32_t net =
      (10u << 24) | (++next_subnet_ << 8);
  new_segment(SegmentKind::kP2p);
  const auto seg = static_cast<SegmentId>(live_segments_ - 1);
  attach(a, seg, Ipv4Addr{net | 1}, 30);
  attach(b, seg, Ipv4Addr{net | 2}, 30);
  return seg;
}

SegmentId Network::add_lan(std::span<const NodeId> members) {
  if (members.size() < 2)
    throw std::invalid_argument("a LAN needs at least two members");
  const std::uint32_t net = (10u << 24) | (++next_subnet_ << 8);
  new_segment(SegmentKind::kLan);
  const auto seg = static_cast<SegmentId>(live_segments_ - 1);
  std::uint32_t host = 0;
  for (const NodeId m : members) attach(m, seg, Ipv4Addr{net | ++host}, 24);
  return seg;
}

void Network::set_receive_handler(NodeId node, ReceiveHandler handler) {
  nodes_.at(node).on_receive = std::move(handler);
}

FaultModel& Network::fault(SegmentId segment) {
  return segments_.at(segment).fault;
}
const FaultModel& Network::fault(SegmentId segment) const {
  return segments_.at(segment).fault;
}

const std::string& Network::node_name(NodeId node) const {
  return nodes_.at(node).name;
}

std::size_t Network::iface_count(NodeId node) const {
  return nodes_.at(node).ifaces.size();
}

const Interface& Network::iface(NodeId node, IfaceIndex idx) const {
  return nodes_.at(node).ifaces.at(idx);
}

bool Network::segment_is_lan(SegmentId segment) const {
  return segments_.at(segment).kind == SegmentKind::kLan;
}

NodeId Network::p2p_peer(SegmentId segment, NodeId self) const {
  const auto& seg = segments_.at(segment);
  if (seg.kind != SegmentKind::kP2p) return kInvalidNode;
  for (const auto& att : seg.attached)
    if (att.node != self) return att.node;
  return kInvalidNode;
}

const std::vector<Network::Attachment>& Network::attachments(
    SegmentId segment) const {
  return segments_.at(segment).attached;
}

void Network::send(NodeId node, IfaceIndex iface, Frame frame) {
  const auto& ifc = nodes_.at(node).ifaces.at(iface);
  const SegmentId seg_id = ifc.segment;
  auto& seg = segments_.at(seg_id);

  if (frame.src.is_zero()) frame.src = ifc.address;
  frame.id = ++next_frame_id_;

  if (tap_) {
    tap_(TapEvent{sim_.now(), node, iface, seg_id, Direction::kSend, &frame});
  }

  if (seg.fault.down) {
    ++frames_dropped_;
    obs::count(obs::Hot::kFramesDropped);
    return;
  }

  // Serialization delay: frames queue behind each other when a bandwidth is
  // configured, mimicking a real wire.
  SimDuration serialize{0};
  if (seg.fault.bytes_per_sec > 0) {
    serialize = SimDuration{static_cast<std::int64_t>(frame.payload.size()) *
                            1'000'000 / seg.fault.bytes_per_sec};
    const SimTime start = std::max(sim_.now(), seg.tx_free_at);
    seg.tx_free_at = start + serialize;
    serialize = (seg.tx_free_at - sim_.now());
  }

  const bool multicast = is_multicast(frame.dst);
  for (auto& att : seg.attached) {
    if (att.node == node && att.iface == iface) continue;
    if (!multicast && !(frame.dst == att.address)) continue;

    if (seg.fault.loss > 0 && seg.rng.chance(seg.fault.loss)) {
      ++frames_dropped_;
      obs::count(obs::Hot::kFramesDropped);
      continue;
    }
    // deliver copies the frame into its in-flight closure, but a Frame
    // copy is now a refcount bump — the payload bytes are shared across
    // every fan-out (and duplicate) delivery of this transmission.
    deliver(seg_id, att, frame, serialize);
    if (seg.fault.duplicate > 0 && seg.rng.chance(seg.fault.duplicate)) {
      ++frames_duplicated_;
      deliver(seg_id, att, frame, serialize);
    }
  }
}

void Network::deliver(SegmentId segment, Attachment& to, const Frame& frame,
                      SimDuration extra) {
  auto& seg = segments_.at(segment);
  SimDuration delay = seg.fault.delay + extra;
  if (seg.fault.jitter.count() > 0)
    delay += seg.rng.jitter(SimDuration{0}, seg.fault.jitter);
  if (seg.fault.reorder > 0 && seg.rng.chance(seg.fault.reorder)) {
    delay += seg.fault.reorder_extra;
    ++frames_reorder_delayed_;
  }

  SimTime arrival = sim_.now() + delay;
  if (seg.fault.fifo) {
    // Ordered transport: a frame never overtakes an earlier one to the
    // same receiver.
    arrival = std::max(arrival, to.last_arrival);
    to.last_arrival = arrival;
  }

  const NodeId dst_node = to.node;
  const IfaceIndex dst_iface = to.iface;
  sim_.schedule_at(arrival, [this, segment, dst_node, dst_iface,
                             f = frame]() {
    ++frames_delivered_;
    obs::count(obs::Hot::kFramesDelivered);
    if (tap_) {
      tap_(TapEvent{sim_.now(), dst_node, dst_iface, segment,
                    Direction::kRecv, &f});
    }
    auto& ns = nodes_.at(dst_node);
    if (ns.on_receive) ns.on_receive(dst_iface, f);
  });
}

}  // namespace nidkit::netsim
