// Deterministic discrete-event simulator core.
//
// A single event queue ordered by (time, insertion sequence) drives the
// whole network: link deliveries, protocol timers, chaos-rule activations
// and harness probes are all events. The insertion-sequence tiebreak makes
// simultaneous events execute in a fixed order, so a (scenario, seed) pair
// always produces an identical trace.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace nidkit::netsim {

using Action = std::function<void()>;

namespace detail {
struct TimerState {
  bool cancelled = false;
};
}  // namespace detail

/// Handle to a scheduled event. Cancelling is O(1): the event stays queued
/// but is skipped when it reaches the head. A default-constructed handle is
/// inert.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Prevents the event from running. Safe to call repeatedly or after the
  /// event has already fired.
  void cancel() {
    if (state_) state_->cancelled = true;
  }

  bool valid() const { return state_ != nullptr; }

 private:
  friend class Simulator;
  using TimerState = detail::TimerState;
  explicit TimerHandle(std::shared_ptr<TimerState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<TimerState> state_;
};

/// The event loop. Not thread-safe; the whole simulation is single-threaded.
class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `when` (must be >= now()).
  TimerHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` `delay` after now().
  TimerHandle schedule(SimDuration delay, Action action);

  /// Executes the next non-cancelled event. Returns false if none remain.
  bool step();

  /// Runs events with time <= deadline, then advances the clock to
  /// `deadline` even if the queue drained early.
  void run_until(SimTime deadline);

  /// Runs until the queue is empty. Only safe for workloads that terminate
  /// (protocol engines re-arm periodic timers forever; use run_until).
  void run();

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  using TimerState = detail::TimerState;

  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<TimerState> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_{kSimStart};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace nidkit::netsim
