// Deterministic discrete-event simulator core.
//
// A single event queue ordered by (time, insertion sequence) drives the
// whole network: link deliveries, protocol timers, chaos-rule activations
// and harness probes are all events. The insertion-sequence tiebreak makes
// simultaneous events execute in a fixed order, so a (scenario, seed) pair
// always produces an identical trace.
//
// The hot path is allocation-free at steady state: actions live in
// util::InlineAction's small buffer (no heap for any closure the engines
// create), and timer bookkeeping uses a slab of generation-counted slots
// recycled through a freelist, so schedule/cancel never allocate once the
// slab and event heap have grown to the workload's high-water mark.
#pragma once

#include <cstdint>
#include <vector>

#include "util/inline_action.hpp"
#include "util/time.hpp"

namespace nidkit::netsim {

using Action = util::InlineAction;

/// Handle to a scheduled event. Cancelling is O(1): the event stays queued
/// but is skipped when it reaches the head. A default-constructed handle is
/// inert. Handles weakly reference a slab slot via a generation counter, so
/// a handle held past its event's execution is harmless — but a handle must
/// not outlive the Simulator it came from.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Prevents the event from running. Safe to call repeatedly or after the
  /// event has already fired.
  void cancel();

  bool valid() const { return sim_ != nullptr; }

 private:
  friend class Simulator;
  TimerHandle(class Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), generation_(gen) {}

  class Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// The event loop. Not thread-safe; the whole simulation is single-threaded.
class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `when` (must be >= now()).
  TimerHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` `delay` after now().
  TimerHandle schedule(SimDuration delay, Action action);

  /// Executes the next non-cancelled event. Returns false if none remain.
  bool step();

  /// Runs events with time <= deadline, then advances the clock to
  /// `deadline` even if the queue drained early.
  void run_until(SimTime deadline);

  /// Runs until the queue is empty. Only safe for workloads that terminate
  /// (protocol engines re-arm periodic timers forever; use run_until).
  void run();

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

  /// Returns the simulator to its just-constructed state — clock at
  /// kSimStart, empty queue, zeroed counters — while keeping the event
  /// heap, timer slab and freelist capacity, so a reused simulator reaches
  /// its high-water mark allocation-free. Outstanding TimerHandles must
  /// not be used afterwards (their owners are torn down first by
  /// harness::Workspace::reset).
  void reset() {
    heap_.clear();
    slots_.clear();
    free_slots_.clear();
    now_ = kSimStart;
    next_seq_ = 0;
    executed_ = 0;
  }

 private:
  friend class TimerHandle;

  /// Cancellation state shared between a queued event and its handle. The
  /// generation counter bumps every time the slot is recycled, so a stale
  /// handle (event already fired) can never cancel the slot's next tenant.
  struct TimerSlot {
    std::uint32_t generation = 0;
    bool cancelled = false;
  };

  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    Action action;
  };
  /// Heap comparator: the "largest" element (heap front) is the earliest
  /// (time, seq) — identical ordering to the previous std::priority_queue.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  SimTime now_{kSimStart};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  /// Binary heap over a plain vector (std::push_heap/pop_heap) rather than
  /// std::priority_queue: pop moves the move-only Action out instead of
  /// copying, and the backing storage is reusable and reservable.
  std::vector<Event> heap_;
  std::vector<TimerSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

inline void TimerHandle::cancel() {
  if (sim_ == nullptr) return;
  auto& slot = sim_->slots_[slot_];
  if (slot.generation == generation_) slot.cancelled = true;
}

}  // namespace nidkit::netsim
