#include "netsim/chaos.hpp"

namespace nidkit::netsim {

void ChaosController::set_delay_all(SimDuration delay) {
  for (SegmentId s = 0; s < net_.segment_count(); ++s)
    net_.fault(s).delay = delay;
}

void ChaosController::set_delay(SegmentId segment, SimDuration delay,
                                SimDuration jitter) {
  auto& f = net_.fault(segment);
  f.delay = delay;
  f.jitter = jitter;
}

void ChaosController::set_loss(SegmentId segment, double probability) {
  net_.fault(segment).loss = probability;
}

void ChaosController::set_duplicate(SegmentId segment, double probability) {
  net_.fault(segment).duplicate = probability;
}

void ChaosController::set_reorder(SegmentId segment, double probability,
                                  SimDuration extra_delay) {
  auto& f = net_.fault(segment);
  f.reorder = probability;
  f.reorder_extra = extra_delay;
}

void ChaosController::cut(SegmentId segment) {
  net_.fault(segment).down = true;
}

void ChaosController::restore(SegmentId segment) {
  net_.fault(segment).down = false;
}

void ChaosController::schedule_window(SegmentId segment, SimTime start,
                                      SimDuration duration, FaultModel fault) {
  auto& sim = net_.sim();
  sim.schedule_at(start, [this, segment, fault] {
    net_.fault(segment) = fault;
  });
  sim.schedule_at(start + duration, [this, segment,
                                     previous = net_.fault(segment)] {
    net_.fault(segment) = previous;
  });
}

}  // namespace nidkit::netsim
