#include "trace/pcap.hpp"

#include "util/bytes.hpp"
#include "util/checksum.hpp"

namespace nidkit::trace {

namespace {

/// Little-endian writer for the pcap framing (the classic format is
/// host-endian; we fix little-endian and write the matching magic).
void le16(std::ostream& os, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  os.write(bytes, 2);
}
void le32(std::ostream& os, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                         static_cast<char>(v >> 16),
                         static_cast<char>(v >> 24)};
  os.write(bytes, 4);
}

}  // namespace

std::vector<std::uint8_t> synthesize_ip_packet(const RecordView& record) {
  ByteWriter w(20 + record.bytes.size());
  const auto total_len = static_cast<std::uint16_t>(20 + record.bytes.size());
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0xc0);  // DSCP CS6 (network control), as routing daemons set
  w.u16(total_len);
  w.u16(0);      // identification
  w.u16(0);      // flags/fragment offset
  w.u8(1);       // TTL 1: link-local routing protocol traffic
  w.u8(record.protocol);
  w.u16(0);      // checksum, patched below
  w.u32(record.src.value());
  w.u32(record.dst.value());
  const std::uint16_t csum = internet_checksum(w.view());
  w.patch_u16(10, csum);
  w.bytes(record.bytes);
  return w.take();
}

std::size_t export_pcap(const TraceLog& log, std::ostream& os,
                        const PcapOptions& options) {
  // Global header: magic (microsecond timestamps), version 2.4,
  // LINKTYPE_RAW.
  le32(os, 0xa1b2c3d4);
  le16(os, 2);
  le16(os, 4);
  le32(os, 0);        // thiszone
  le32(os, 0);        // sigfigs
  le32(os, 65535);    // snaplen
  le32(os, 101);      // LINKTYPE_RAW

  std::size_t written = 0;
  for (const auto& rec : log.records()) {
    if (rec.bytes.empty()) continue;
    if (options.node >= 0 &&
        rec.node != static_cast<netsim::NodeId>(options.node))
      continue;
    if (options.direction && rec.direction != *options.direction) continue;

    const auto packet = synthesize_ip_packet(rec);
    const auto us = rec.time.count();
    le32(os, static_cast<std::uint32_t>(us / 1'000'000));
    le32(os, static_cast<std::uint32_t>(us % 1'000'000));
    le32(os, static_cast<std::uint32_t>(packet.size()));
    le32(os, static_cast<std::uint32_t>(packet.size()));
    os.write(reinterpret_cast<const char*>(packet.data()),
             static_cast<std::streamsize>(packet.size()));
    ++written;
  }
  return written;
}

}  // namespace nidkit::trace
