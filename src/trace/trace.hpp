// Packet trace capture: the simulator's tcpdump.
//
// TraceLog attaches to a Network's tap and records every frame each router
// sends or receives — timestamp, direction, raw wire bytes, and an eagerly
// parsed protocol digest so the miner never re-decodes. An optional state
// prober snapshots router-internal state (e.g. the OSPF neighbor FSM state)
// at each event, powering the future-work state-conditioned mining.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include <istream>

#include "netsim/network.hpp"
#include "packet/ospf_types.hpp"
#include "util/ip.hpp"
#include "util/result.hpp"
#include "util/shared_bytes.hpp"
#include "util/small_vec.hpp"
#include "util/time.hpp"

namespace nidkit::trace {

/// Parsed summary of an OSPF packet, sufficient for all keying schemes.
struct OspfDigest {
  std::uint8_t pkt_type = 0;  ///< wire packet type 1..5
  std::uint8_t dbd_flags = 0;  ///< I/M/MS bits when pkt_type == 2
  struct LsaDigest {
    std::uint8_t lsa_type = 0;
    std::int32_t seq = 0;
    std::uint16_t age = 0;
    Ipv4Addr link_state_id;
    RouterId advertising_router;
  };
  /// LSA headers carried by the packet (LSU contents, LSAck/DBD headers).
  /// Small-inline: most packets carry 0-2 headers, so the common case
  /// costs no allocation; a DBD summarising a big LSDB spills to heap.
  util::SmallVec<LsaDigest, 4> lsas;

  /// Greatest LS sequence number carried, or INT32_MIN if none.
  std::int32_t max_seq() const;
};

/// Parsed summary of a RIP packet.
struct RipDigest {
  std::uint8_t command = 0;
  std::uint16_t entry_count = 0;
  std::uint32_t max_metric = 0;
  bool full_table_request = false;
};

/// Parsed summary of a BGP message.
struct BgpDigest {
  std::uint8_t msg_type = 0;  ///< 1 OPEN, 2 UPDATE, 3 NOTIFICATION, 4 KEEPALIVE
  std::uint32_t as_path_len = 0;
  std::uint16_t nlri_count = 0;
  std::uint16_t withdrawn_count = 0;
  std::uint8_t error_code = 0;
};

/// monostate = frame did not parse as a known protocol.
using Digest =
    std::variant<std::monostate, OspfDigest, RipDigest, BgpDigest>;

/// One captured packet event.
struct PacketRecord {
  SimTime time{0};
  netsim::NodeId node = 0;
  netsim::IfaceIndex iface = 0;
  netsim::Direction direction = netsim::Direction::kSend;
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t protocol = 0;
  std::uint64_t frame_id = 0;   ///< network-assigned frame id
  std::uint64_t caused_by = 0;  ///< ground-truth provenance (sends only)
  int observer_state = -1;      ///< state-prober snapshot, -1 if unprobed
  /// Raw wire bytes, sharing the frame's payload buffer (not a copy).
  /// Empty when the log runs with keep_bytes off.
  util::SharedBytes bytes;
  Digest digest;

  bool is_send() const { return direction == netsim::Direction::kSend; }
  const OspfDigest* ospf() const { return std::get_if<OspfDigest>(&digest); }
  const RipDigest* rip() const { return std::get_if<RipDigest>(&digest); }
  const BgpDigest* bgp() const { return std::get_if<BgpDigest>(&digest); }
};

class TraceLog {
 public:
  /// Snapshot of router-internal state for a node, as an opaque label.
  using StateProber = std::function<int(netsim::NodeId)>;

  /// Installs this log as `net`'s tap. The log must outlive the network's
  /// use of the tap.
  void attach(netsim::Network& net);

  void set_state_prober(StateProber prober) { prober_ = std::move(prober); }

  /// Keep raw wire bytes in each record (default on; turn off to halve
  /// memory in long sweeps — digests are always kept).
  void set_keep_bytes(bool keep) { keep_bytes_ = keep; }

  /// Appends a record directly (used when importing externally captured
  /// traces, and by tests that need precise control over timing).
  /// Records must be appended in non-decreasing time order.
  void append(PacketRecord record) {
    index_record(record.node, records_.size());
    records_.push_back(std::move(record));
  }

  const std::vector<PacketRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Indices of records observed at `node`, in time order. Maintained as
  /// records arrive, so reads are O(1) — the miner's per-node grouping
  /// comes straight from here instead of rebuilding a map per call.
  const std::vector<std::size_t>& node_records(netsim::NodeId node) const;

  /// Largest observed node id + 1 (the per-node index's extent).
  std::size_t node_index_extent() const { return by_node_.size(); }

  /// Number of distinct nodes that observed at least one packet.
  std::size_t observed_nodes() const;

  /// Human-readable dump, one line per record.
  void dump(std::ostream& os, const netsim::Network& net) const;

  /// Serializes the trace to a line-oriented text format ("nidkit-trace
  /// v1") carrying raw wire bytes; digests are recomputed on load.
  /// Requires keep_bytes (the default) — byte-less records round-trip as
  /// undecodable.
  void save(std::ostream& os) const;

  /// Parses a trace produced by save(). Records are re-digested through
  /// the wire codecs, so a trace saved by a newer build is re-validated.
  static Result<TraceLog> load(std::istream& is);

  void clear() {
    records_.clear();
    by_node_.clear();
  }

 private:
  void on_tap(const netsim::TapEvent& ev);
  void index_record(netsim::NodeId node, std::size_t index) {
    if (node >= by_node_.size()) by_node_.resize(node + 1);
    by_node_[node].push_back(index);
  }

  std::vector<PacketRecord> records_;
  /// Per-node record indices in time order (node ids are dense).
  std::vector<std::vector<std::size_t>> by_node_;
  StateProber prober_;
  bool keep_bytes_ = true;
};

/// Parses a frame into a protocol digest (OSPF proto 89, RIP proto 17).
Digest digest_frame(const netsim::Frame& frame);

}  // namespace nidkit::trace
