// Packet trace capture: the simulator's tcpdump.
//
// TraceLog attaches to a Network's tap and records every frame each router
// sends or receives — timestamp, direction, raw wire bytes, and an eagerly
// parsed protocol digest so the miner never re-decodes. An optional state
// prober snapshots router-internal state (e.g. the OSPF neighbor FSM state)
// at each event, powering the future-work state-conditioned mining.
//
// Storage is columnar (SoA): each fixed-width record field lives in its own
// flat column, protocol digests live in per-protocol pools (OSPF digests
// with their LSA header lists laid out in arena slabs), and every column is
// backed by one per-scenario monotonic util::Arena. Appending a record on
// the tap path is a handful of bump-pointer pushes — no 100+-byte struct
// construction, no per-record allocation — and scenario teardown is one
// arena release, with the pages recycled into the next scenario's log.
// Consumers read through RecordView (a cheap per-record materialization) or
// straight from the column spans; the miner does the latter.
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <iterator>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "netsim/network.hpp"
#include "packet/ospf_types.hpp"
#include "util/arena.hpp"
#include "util/arena_vec.hpp"
#include "util/ip.hpp"
#include "util/result.hpp"
#include "util/shared_bytes.hpp"
#include "util/small_vec.hpp"
#include "util/time.hpp"

namespace nidkit::trace {

/// Parsed summary of an OSPF packet, sufficient for all keying schemes.
struct OspfDigest {
  std::uint8_t pkt_type = 0;  ///< wire packet type 1..5
  std::uint8_t dbd_flags = 0;  ///< I/M/MS bits when pkt_type == 2
  struct LsaDigest {
    std::uint8_t lsa_type = 0;
    std::int32_t seq = 0;
    std::uint16_t age = 0;
    Ipv4Addr link_state_id;
    RouterId advertising_router;
  };
  /// LSA headers carried by the packet (LSU contents, LSAck/DBD headers).
  /// Small-inline: most packets carry 0-2 headers, so the common case
  /// costs no allocation; a DBD summarising a big LSDB spills to heap.
  util::SmallVec<LsaDigest, 4> lsas;

  /// Greatest LS sequence number carried, or INT32_MIN if none.
  std::int32_t max_seq() const;
};

/// Parsed summary of a RIP packet.
struct RipDigest {
  std::uint8_t command = 0;
  std::uint16_t entry_count = 0;
  std::uint32_t max_metric = 0;
  bool full_table_request = false;
};

/// Parsed summary of a BGP message.
struct BgpDigest {
  std::uint8_t msg_type = 0;  ///< 1 OPEN, 2 UPDATE, 3 NOTIFICATION, 4 KEEPALIVE
  std::uint32_t as_path_len = 0;
  std::uint16_t nlri_count = 0;
  std::uint16_t withdrawn_count = 0;
  std::uint8_t error_code = 0;
};

/// monostate = frame did not parse as a known protocol.
using Digest =
    std::variant<std::monostate, OspfDigest, RipDigest, BgpDigest>;

/// One captured packet event, as a standalone value. This remains the
/// import/test-facing write format: TraceLog::append(PacketRecord)
/// decomposes it into columns. Log reads go through RecordView.
struct PacketRecord {
  SimTime time{0};
  netsim::NodeId node = 0;
  netsim::IfaceIndex iface = 0;
  netsim::Direction direction = netsim::Direction::kSend;
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t protocol = 0;
  std::uint64_t frame_id = 0;   ///< network-assigned frame id
  std::uint64_t caused_by = 0;  ///< ground-truth provenance (sends only)
  int observer_state = -1;      ///< state-prober snapshot, -1 if unprobed
  /// Raw wire bytes, sharing the frame's payload buffer (not a copy).
  /// Empty when the log runs with keep_bytes off.
  util::SharedBytes bytes;
  Digest digest;

  bool is_send() const { return direction == netsim::Direction::kSend; }
  const OspfDigest* ospf() const { return std::get_if<OspfDigest>(&digest); }
  const RipDigest* rip() const { return std::get_if<RipDigest>(&digest); }
  const BgpDigest* bgp() const { return std::get_if<BgpDigest>(&digest); }
};

/// OSPF digest as stored in the log's pool: same fields as OspfDigest but
/// the LSA headers are a span into an arena slab instead of a SmallVec.
struct OspfView {
  std::uint8_t pkt_type = 0;
  std::uint8_t dbd_flags = 0;
  std::span<const OspfDigest::LsaDigest> lsas;

  /// Greatest LS sequence number carried, or INT32_MIN if none.
  std::int32_t max_seq() const;
};

/// A materialized read of one trace record. Scalars are copied out of the
/// columns; `bytes` shares the stored payload cell; the digest accessors
/// return pointers into the log's digest pools, which stay valid for the
/// life of the log (a view converted from a free-standing PacketRecord
/// instead carries the digest inline and must not outlive the record).
class RecordView {
 public:
  SimTime time{0};
  netsim::NodeId node = 0;
  netsim::IfaceIndex iface = 0;
  netsim::Direction direction = netsim::Direction::kSend;
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t protocol = 0;
  std::uint64_t frame_id = 0;
  std::uint64_t caused_by = 0;
  int observer_state = -1;
  util::SharedBytes bytes;

  RecordView() = default;
  /// Implicit: keying schemes take RecordView, tests hand them
  /// PacketRecords. The view borrows the record's digest storage (and for
  /// OSPF spans its SmallVec), so the record must outlive the view.
  RecordView(const PacketRecord& rec);  // NOLINT: implicit

  RecordView(const RecordView& other) { *this = other; }
  RecordView(RecordView&& other) noexcept { *this = other; }
  RecordView& operator=(const RecordView& other);
  RecordView& operator=(RecordView&& other) noexcept {
    return *this = static_cast<const RecordView&>(other);
  }

  bool is_send() const { return direction == netsim::Direction::kSend; }
  const OspfView* ospf() const { return ospf_; }
  const RipDigest* rip() const { return rip_; }
  const BgpDigest* bgp() const { return bgp_; }

 private:
  friend class TraceLog;
  const OspfView* ospf_ = nullptr;
  const RipDigest* rip_ = nullptr;
  const BgpDigest* bgp_ = nullptr;
  /// Inline digest storage for views converted from a PacketRecord; pool-
  /// backed views leave these untouched and point into the log instead.
  OspfView ospf_store_;
  RipDigest rip_store_;
  BgpDigest bgp_store_;
};

class TraceLog {
 public:
  /// Snapshot of router-internal state for a node, as an opaque label.
  using StateProber = std::function<int(netsim::NodeId)>;

  TraceLog();
  ~TraceLog();
  TraceLog(TraceLog&& other) noexcept;
  TraceLog& operator=(TraceLog&& other) noexcept;
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Installs this log as `net`'s tap. The log must outlive the network's
  /// use of the tap.
  void attach(netsim::Network& net);

  void set_state_prober(StateProber prober) { prober_ = std::move(prober); }

  /// Keep raw wire bytes in each record (default on; turn off to halve
  /// memory in long sweeps — digests are always kept).
  void set_keep_bytes(bool keep) { keep_bytes_ = keep; }

  /// Appends a record (used when importing externally captured traces, and
  /// by tests that need precise control over timing). This is the only
  /// write path besides the tap itself: the record is decomposed into the
  /// columns here. Records must be appended in non-decreasing time order.
  void append(PacketRecord record);

  /// Materializes record `i`. Digest pointers in the view stay valid until
  /// the log is cleared or destroyed (they target the log's pools).
  RecordView view(std::size_t i) const;

  /// Record-like read access over the columns: `records()[i]`, iteration,
  /// `front()`. Yields RecordView by value.
  class RecordsRange {
   public:
    class iterator {
     public:
      using value_type = RecordView;
      using difference_type = std::ptrdiff_t;
      using iterator_category = std::input_iterator_tag;

      iterator() = default;
      iterator(const TraceLog* log, std::size_t i) : log_(log), i_(i) {}
      RecordView operator*() const { return log_->view(i_); }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      iterator operator++(int) {
        iterator out = *this;
        ++i_;
        return out;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.i_ == b.i_;
      }

     private:
      const TraceLog* log_ = nullptr;
      std::size_t i_ = 0;
    };

    explicit RecordsRange(const TraceLog* log) : log_(log) {}
    std::size_t size() const { return log_->size(); }
    bool empty() const { return log_->size() == 0; }
    RecordView operator[](std::size_t i) const { return log_->view(i); }
    RecordView front() const { return log_->view(0); }
    RecordView back() const { return log_->view(log_->size() - 1); }
    iterator begin() const { return {log_, 0}; }
    iterator end() const { return {log_, log_->size()}; }

   private:
    const TraceLog* log_;
  };

  RecordsRange records() const { return RecordsRange{this}; }
  std::size_t size() const { return time_.size(); }

  /// Indices of records observed at `node`, in time order. Maintained as
  /// records arrive, so reads are O(1) — the miner's per-node grouping
  /// comes straight from here instead of rebuilding a map per call.
  std::span<const std::uint32_t> node_records(netsim::NodeId node) const;

  /// Largest observed node id + 1 (the per-node index's extent).
  std::size_t node_index_extent() const { return by_node_.size(); }

  /// Number of distinct nodes that observed at least one packet.
  std::size_t observed_nodes() const;

  // Raw column access for hot consumers (the miner walks these instead of
  // materializing views). All spans share indexing with node_records().
  std::span<const SimTime> times() const { return time_.span(); }
  std::span<const netsim::NodeId> nodes() const { return node_.span(); }
  std::span<const std::uint8_t> send_flags() const { return send_.span(); }
  std::span<const std::uint64_t> frame_ids() const {
    return frame_id_.span();
  }
  std::span<const std::uint64_t> caused_by_ids() const {
    return caused_by_.span();
  }

  /// Human-readable dump, one line per record.
  void dump(std::ostream& os, const netsim::Network& net) const;

  /// Serializes the trace to a line-oriented text format ("nidkit-trace
  /// v1") carrying raw wire bytes; digests are recomputed on load.
  /// Requires keep_bytes (the default) — byte-less records round-trip as
  /// undecodable.
  void save(std::ostream& os) const;

  /// Parses a trace produced by save(). Records are re-digested through
  /// the wire codecs, so a trace saved by a newer build is re-validated.
  static Result<TraceLog> load(std::istream& is);

  /// Forgets every record and rewinds the arena; the log is immediately
  /// reusable and refills into the pages it already owns.
  void clear();

  /// Bytes the backing arena has handed out (diagnostics/bench).
  std::size_t arena_bytes() const { return arena_->bytes_allocated(); }

 private:
  enum DigestKind : std::uint32_t {
    kDigestNone = 0,
    kDigestOspf = 1,
    kDigestRip = 2,
    kDigestBgp = 3,
  };

  void on_tap(const netsim::TapEvent& ev);
  /// Pushes every fixed-width column for one record except the digest ref
  /// (the caller pushes that last, once the digest is pooled).
  void push_common(SimTime time, netsim::NodeId node,
                   netsim::IfaceIndex iface, netsim::Direction direction,
                   Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                   std::uint64_t frame_id, std::uint64_t caused_by,
                   int observer_state, util::SharedBytes::Handle bytes);
  /// Digests an OSPF frame straight into the pools with a header-only fast
  /// parser (validation-equivalent to ospf::decode for simulator-encoded
  /// frames). Returns false if the frame does not validate.
  bool fast_ospf_digest(std::span<const std::uint8_t> wire);
  /// Same for RIP (proto 17). Returns false if the frame does not validate.
  bool fast_rip_digest(std::span<const std::uint8_t> wire);
  /// Copies a decoded digest into the pools and pushes the digest ref.
  void push_digest(const Digest& digest);
  void index_record(netsim::NodeId node, std::size_t index);
  void release_bytes() noexcept;

  /// Arena behind every column and pool. unique_ptr keeps the arena's
  /// address stable across TraceLog moves (columns never re-point).
  std::unique_ptr<util::Arena> arena_;
  // One column per fixed-width record field.
  util::ArenaVec<SimTime> time_;
  util::ArenaVec<netsim::NodeId> node_;
  util::ArenaVec<netsim::IfaceIndex> iface_;
  util::ArenaVec<std::uint8_t> send_;  ///< 1 = send, 0 = recv
  util::ArenaVec<std::uint32_t> src_;
  util::ArenaVec<std::uint32_t> dst_;
  util::ArenaVec<std::uint8_t> protocol_;
  util::ArenaVec<std::uint64_t> frame_id_;
  util::ArenaVec<std::uint64_t> caused_by_;
  util::ArenaVec<int> observer_state_;
  /// kind << 30 | pool index (see DigestKind).
  util::ArenaVec<std::uint32_t> digest_ref_;
  /// Retained SharedBytes handles (null = no bytes kept). Released
  /// explicitly in clear()/destructor — arena memory runs no destructors.
  util::ArenaVec<util::SharedBytes::Handle> bytes_;
  // Per-protocol digest pools; LSA header lists live in arena slabs
  // referenced by OspfView::lsas.
  util::ArenaVec<OspfView> ospf_pool_;
  util::ArenaVec<RipDigest> rip_pool_;
  util::ArenaVec<BgpDigest> bgp_pool_;
  /// Per-node record indices in time order (node ids are dense).
  util::ArenaVec<util::ArenaVec<std::uint32_t>> by_node_;
  StateProber prober_;
  bool keep_bytes_ = true;
};

/// Parses a frame into a protocol digest (OSPF proto 89, RIP proto 17).
Digest digest_frame(const netsim::Frame& frame);

}  // namespace nidkit::trace
