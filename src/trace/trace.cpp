#include "trace/trace.hpp"

#include <algorithm>
#include <limits>

#include "packet/bgp_packet.hpp"
#include "packet/ospf_packet.hpp"
#include "packet/rip_packet.hpp"

namespace nidkit::trace {

std::int32_t OspfDigest::max_seq() const {
  std::int32_t best = std::numeric_limits<std::int32_t>::min();
  for (const auto& l : lsas) best = std::max(best, l.seq);
  return best;
}

Digest digest_frame(const netsim::Frame& frame) {
  if (frame.protocol == ospf::kIpProtoOspf) {
    auto decoded = ospf::decode(frame.payload);
    if (!decoded.ok()) return std::monostate{};
    const auto& pkt = decoded.value();
    OspfDigest d;
    d.pkt_type = static_cast<std::uint8_t>(pkt.header.type);
    auto add_header = [&d](const ospf::LsaHeader& h) {
      d.lsas.push_back(OspfDigest::LsaDigest{
          static_cast<std::uint8_t>(h.type), h.seq, h.age, h.link_state_id,
          h.advertising_router});
    };
    if (const auto* lsu = std::get_if<ospf::LsUpdateBody>(&pkt.body)) {
      for (const auto& lsa : lsu->lsas) add_header(lsa.header);
    } else if (const auto* ack = std::get_if<ospf::LsAckBody>(&pkt.body)) {
      for (const auto& h : ack->lsa_headers) add_header(h);
    } else if (const auto* dbd = std::get_if<ospf::DbdBody>(&pkt.body)) {
      d.dbd_flags = dbd->flags;
      for (const auto& h : dbd->lsa_headers) add_header(h);
    }
    return d;
  }
  if (frame.protocol == 6) {  // TCP: the only TCP traffic we model is BGP
    auto decoded = bgp::decode(frame.payload);
    if (!decoded.ok()) return std::monostate{};
    const auto& msg = decoded.value();
    BgpDigest d;
    d.msg_type = static_cast<std::uint8_t>(msg.type());
    if (const auto* update = std::get_if<bgp::UpdateMessage>(&msg.body)) {
      d.as_path_len = static_cast<std::uint32_t>(update->as_path.size());
      d.nlri_count = static_cast<std::uint16_t>(update->nlri.size());
      d.withdrawn_count =
          static_cast<std::uint16_t>(update->withdrawn.size());
    } else if (const auto* notif =
                   std::get_if<bgp::NotificationMessage>(&msg.body)) {
      d.error_code = notif->error_code;
    }
    return d;
  }
  if (frame.protocol == 17) {  // UDP: the only UDP traffic we model is RIP
    auto decoded = rip::decode(frame.payload);
    if (!decoded.ok()) return std::monostate{};
    const auto& pkt = decoded.value();
    RipDigest d;
    d.command = static_cast<std::uint8_t>(pkt.command);
    d.entry_count = static_cast<std::uint16_t>(pkt.entries.size());
    d.full_table_request = pkt.is_full_table_request();
    for (const auto& e : pkt.entries) d.max_metric = std::max(d.max_metric, e.metric);
    return d;
  }
  return std::monostate{};
}

void TraceLog::attach(netsim::Network& net) {
  net.set_tap([this](const netsim::TapEvent& ev) { on_tap(ev); });
}

void TraceLog::on_tap(const netsim::TapEvent& ev) {
  PacketRecord rec;
  rec.time = ev.time;
  rec.node = ev.node;
  rec.iface = ev.iface;
  rec.direction = ev.direction;
  rec.src = ev.frame->src;
  rec.dst = ev.frame->dst;
  rec.protocol = ev.frame->protocol;
  rec.frame_id = ev.frame->id;
  rec.caused_by = ev.frame->caused_by;
  if (prober_) rec.observer_state = prober_(ev.node);
  // Sharing, not copying: the record holds another reference to the
  // frame's payload cell.
  if (keep_bytes_) rec.bytes = ev.frame->payload;
  rec.digest = digest_frame(*ev.frame);
  index_record(rec.node, records_.size());
  records_.push_back(std::move(rec));
}

const std::vector<std::size_t>& TraceLog::node_records(
    netsim::NodeId node) const {
  static const std::vector<std::size_t> kEmpty;
  return node < by_node_.size() ? by_node_[node] : kEmpty;
}

std::size_t TraceLog::observed_nodes() const {
  std::size_t n = 0;
  for (const auto& idx : by_node_)
    if (!idx.empty()) ++n;
  return n;
}

void TraceLog::dump(std::ostream& os, const netsim::Network& net) const {
  for (const auto& r : records_) {
    os << format_time(r.time) << ' ' << net.node_name(r.node) << " if"
       << r.iface << (r.is_send() ? " SEND " : " RECV ")
       << r.src.to_string() << " -> " << r.dst.to_string();
    if (const auto* o = r.ospf()) {
      os << " OSPF type=" << int(o->pkt_type) << " lsas=" << o->lsas.size();
    } else if (const auto* p = r.rip()) {
      os << " RIP cmd=" << int(p->command) << " entries=" << p->entry_count;
    } else {
      os << " proto=" << int(r.protocol) << " (" << r.bytes.size()
         << " bytes)";
    }
    if (r.caused_by != 0) os << " caused_by=#" << r.caused_by;
    os << " frame=#" << r.frame_id << '\n';
  }
}

void TraceLog::save(std::ostream& os) const {
  os << "nidkit-trace v1 " << records_.size() << '\n';
  for (const auto& r : records_) {
    os << r.time.count() << ' ' << r.node << ' ' << r.iface << ' '
       << (r.is_send() ? 'S' : 'R') << ' ' << r.src.value() << ' '
       << r.dst.value() << ' ' << int(r.protocol) << ' ' << r.frame_id << ' '
       << r.caused_by << ' ' << r.observer_state << ' ';
    static constexpr char kHexDigits[] = "0123456789abcdef";
    if (r.bytes.empty()) {
      os << '-';
    } else {
      for (const auto b : r.bytes) {
        os << kHexDigits[b >> 4] << kHexDigits[b & 0xf];
      }
    }
    os << '\n';
  }
}

Result<TraceLog> TraceLog::load(std::istream& is) {
  std::string magic, version;
  std::size_t count = 0;
  if (!(is >> magic >> version >> count) || magic != "nidkit-trace" ||
      version != "v1") {
    return fail("not a nidkit-trace v1 stream");
  }
  TraceLog log;
  for (std::size_t i = 0; i < count; ++i) {
    PacketRecord r;
    long long time_us = 0;
    char dir = 0;
    std::uint32_t src = 0, dst = 0;
    int protocol = 0;
    std::string hex;
    if (!(is >> time_us >> r.node >> r.iface >> dir >> src >> dst >>
          protocol >> r.frame_id >> r.caused_by >> r.observer_state >> hex)) {
      return fail("truncated trace at record " + std::to_string(i));
    }
    if (dir != 'S' && dir != 'R')
      return fail("bad direction at record " + std::to_string(i));
    r.time = SimTime{time_us};
    r.direction = dir == 'S' ? netsim::Direction::kSend
                             : netsim::Direction::kRecv;
    r.src = Ipv4Addr{src};
    r.dst = Ipv4Addr{dst};
    r.protocol = static_cast<std::uint8_t>(protocol);
    if (hex != "-") {
      if (hex.size() % 2 != 0)
        return fail("ragged hex at record " + std::to_string(i));
      auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      std::vector<std::uint8_t> bytes;
      bytes.reserve(hex.size() / 2);
      for (std::size_t k = 0; k < hex.size(); k += 2) {
        const int hi = nibble(hex[k]);
        const int lo = nibble(hex[k + 1]);
        if (hi < 0 || lo < 0)
          return fail("bad hex at record " + std::to_string(i));
        bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
      }
      r.bytes = util::SharedBytes(bytes);
      netsim::Frame reparse;
      reparse.protocol = r.protocol;
      reparse.payload = r.bytes;
      r.digest = digest_frame(reparse);
    }
    log.append(std::move(r));
  }
  return log;
}

}  // namespace nidkit::trace
