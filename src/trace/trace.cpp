#include "trace/trace.hpp"

#include <algorithm>
#include <limits>

#include "packet/bgp_packet.hpp"
#include "packet/ospf_packet.hpp"
#include "packet/rip_packet.hpp"
#include "util/checksum.hpp"

namespace nidkit::trace {

namespace {

constexpr std::uint32_t kDigestKindShift = 30;
constexpr std::uint32_t kDigestIndexMask = (1u << kDigestKindShift) - 1;

inline std::uint16_t be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint32_t{p[0]} << 8) | p[1]);
}
inline std::uint32_t be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline OspfDigest::LsaDigest lsa_digest_from_header(const std::uint8_t* h) {
  OspfDigest::LsaDigest d;
  d.age = be16(h);
  d.lsa_type = h[3];
  d.link_state_id = Ipv4Addr{be32(h + 4)};
  d.advertising_router = RouterId{be32(h + 8)};
  d.seq = static_cast<std::int32_t>(be32(h + 12));
  return d;
}

template <typename LsaRange>
std::int32_t max_seq_of(const LsaRange& lsas) {
  std::int32_t best = std::numeric_limits<std::int32_t>::min();
  for (const auto& l : lsas) best = std::max(best, l.seq);
  return best;
}

}  // namespace

std::int32_t OspfDigest::max_seq() const { return max_seq_of(lsas); }
std::int32_t OspfView::max_seq() const { return max_seq_of(lsas); }

Digest digest_frame(const netsim::Frame& frame) {
  if (frame.protocol == ospf::kIpProtoOspf) {
    auto decoded = ospf::decode(frame.payload);
    if (!decoded.ok()) return std::monostate{};
    const auto& pkt = decoded.value();
    OspfDigest d;
    d.pkt_type = static_cast<std::uint8_t>(pkt.header.type);
    auto add_header = [&d](const ospf::LsaHeader& h) {
      d.lsas.push_back(OspfDigest::LsaDigest{
          static_cast<std::uint8_t>(h.type), h.seq, h.age, h.link_state_id,
          h.advertising_router});
    };
    if (const auto* lsu = std::get_if<ospf::LsUpdateBody>(&pkt.body)) {
      for (const auto& lsa : lsu->lsas) add_header(lsa.header);
    } else if (const auto* ack = std::get_if<ospf::LsAckBody>(&pkt.body)) {
      for (const auto& h : ack->lsa_headers) add_header(h);
    } else if (const auto* dbd = std::get_if<ospf::DbdBody>(&pkt.body)) {
      d.dbd_flags = dbd->flags;
      for (const auto& h : dbd->lsa_headers) add_header(h);
    }
    return d;
  }
  if (frame.protocol == 6) {  // TCP: the only TCP traffic we model is BGP
    auto decoded = bgp::decode(frame.payload);
    if (!decoded.ok()) return std::monostate{};
    const auto& msg = decoded.value();
    BgpDigest d;
    d.msg_type = static_cast<std::uint8_t>(msg.type());
    if (const auto* update = std::get_if<bgp::UpdateMessage>(&msg.body)) {
      d.as_path_len = static_cast<std::uint32_t>(update->as_path.size());
      d.nlri_count = static_cast<std::uint16_t>(update->nlri.size());
      d.withdrawn_count =
          static_cast<std::uint16_t>(update->withdrawn.size());
    } else if (const auto* notif =
                   std::get_if<bgp::NotificationMessage>(&msg.body)) {
      d.error_code = notif->error_code;
    }
    return d;
  }
  if (frame.protocol == 17) {  // UDP: the only UDP traffic we model is RIP
    auto decoded = rip::decode(frame.payload);
    if (!decoded.ok()) return std::monostate{};
    const auto& pkt = decoded.value();
    RipDigest d;
    d.command = static_cast<std::uint8_t>(pkt.command);
    d.entry_count = static_cast<std::uint16_t>(pkt.entries.size());
    d.full_table_request = pkt.is_full_table_request();
    for (const auto& e : pkt.entries) d.max_metric = std::max(d.max_metric, e.metric);
    return d;
  }
  return std::monostate{};
}

RecordView::RecordView(const PacketRecord& rec)
    : time(rec.time),
      node(rec.node),
      iface(rec.iface),
      direction(rec.direction),
      src(rec.src),
      dst(rec.dst),
      protocol(rec.protocol),
      frame_id(rec.frame_id),
      caused_by(rec.caused_by),
      observer_state(rec.observer_state),
      bytes(rec.bytes) {
  if (const auto* o = rec.ospf()) {
    ospf_store_.pkt_type = o->pkt_type;
    ospf_store_.dbd_flags = o->dbd_flags;
    ospf_store_.lsas = {o->lsas.data(), o->lsas.size()};
    ospf_ = &ospf_store_;
  } else if (const auto* r = rec.rip()) {
    rip_store_ = *r;
    rip_ = &rip_store_;
  } else if (const auto* b = rec.bgp()) {
    bgp_store_ = *b;
    bgp_ = &bgp_store_;
  }
}

RecordView& RecordView::operator=(const RecordView& other) {
  time = other.time;
  node = other.node;
  iface = other.iface;
  direction = other.direction;
  src = other.src;
  dst = other.dst;
  protocol = other.protocol;
  frame_id = other.frame_id;
  caused_by = other.caused_by;
  observer_state = other.observer_state;
  bytes = other.bytes;
  ospf_store_ = other.ospf_store_;
  rip_store_ = other.rip_store_;
  bgp_store_ = other.bgp_store_;
  // Digest pointers either target the log's pools (copy as-is) or the
  // source view's inline store (re-point at our own copy).
  ospf_ = other.ospf_ == &other.ospf_store_ ? &ospf_store_ : other.ospf_;
  rip_ = other.rip_ == &other.rip_store_ ? &rip_store_ : other.rip_;
  bgp_ = other.bgp_ == &other.bgp_store_ ? &bgp_store_ : other.bgp_;
  return *this;
}

TraceLog::TraceLog() : arena_(std::make_unique<util::Arena>()) {
  util::Arena* a = arena_.get();
  time_.set_arena(a);
  node_.set_arena(a);
  iface_.set_arena(a);
  send_.set_arena(a);
  src_.set_arena(a);
  dst_.set_arena(a);
  protocol_.set_arena(a);
  frame_id_.set_arena(a);
  caused_by_.set_arena(a);
  observer_state_.set_arena(a);
  digest_ref_.set_arena(a);
  bytes_.set_arena(a);
  ospf_pool_.set_arena(a);
  rip_pool_.set_arena(a);
  bgp_pool_.set_arena(a);
  by_node_.set_arena(a);
}

TraceLog::~TraceLog() { release_bytes(); }

TraceLog::TraceLog(TraceLog&& other) noexcept = default;

TraceLog& TraceLog::operator=(TraceLog&& other) noexcept {
  if (this != &other) {
    release_bytes();
    arena_ = std::move(other.arena_);
    time_ = std::move(other.time_);
    node_ = std::move(other.node_);
    iface_ = std::move(other.iface_);
    send_ = std::move(other.send_);
    src_ = std::move(other.src_);
    dst_ = std::move(other.dst_);
    protocol_ = std::move(other.protocol_);
    frame_id_ = std::move(other.frame_id_);
    caused_by_ = std::move(other.caused_by_);
    observer_state_ = std::move(other.observer_state_);
    digest_ref_ = std::move(other.digest_ref_);
    bytes_ = std::move(other.bytes_);
    ospf_pool_ = std::move(other.ospf_pool_);
    rip_pool_ = std::move(other.rip_pool_);
    bgp_pool_ = std::move(other.bgp_pool_);
    by_node_ = std::move(other.by_node_);
    prober_ = std::move(other.prober_);
    keep_bytes_ = other.keep_bytes_;
  }
  return *this;
}

void TraceLog::release_bytes() noexcept {
  for (util::SharedBytes::Handle h : bytes_) {
    if (h != nullptr) util::SharedBytes::release_handle(h);
  }
}

void TraceLog::attach(netsim::Network& net) {
  net.set_tap([this](const netsim::TapEvent& ev) { on_tap(ev); });
}

void TraceLog::index_record(netsim::NodeId node, std::size_t index) {
  if (node >= by_node_.size()) [[unlikely]] {
    const std::size_t old = by_node_.size();
    by_node_.resize(node + 1);
    for (std::size_t i = old; i < by_node_.size(); ++i)
      by_node_[i].set_arena(arena_.get());
  }
  by_node_[node].push_back(static_cast<std::uint32_t>(index));
}

void TraceLog::push_common(SimTime time, netsim::NodeId node,
                           netsim::IfaceIndex iface,
                           netsim::Direction direction, Ipv4Addr src,
                           Ipv4Addr dst, std::uint8_t protocol,
                           std::uint64_t frame_id, std::uint64_t caused_by,
                           int observer_state,
                           util::SharedBytes::Handle bytes) {
  const std::size_t idx = time_.size();
  time_.push_back(time);
  node_.push_back(node);
  iface_.push_back(iface);
  send_.push_back(direction == netsim::Direction::kSend ? 1 : 0);
  src_.push_back(src.value());
  dst_.push_back(dst.value());
  protocol_.push_back(protocol);
  frame_id_.push_back(frame_id);
  caused_by_.push_back(caused_by);
  observer_state_.push_back(observer_state);
  bytes_.push_back(bytes);
  index_record(node, idx);
}

void TraceLog::push_digest(const Digest& digest) {
  if (const auto* o = std::get_if<OspfDigest>(&digest)) {
    OspfView v;
    v.pkt_type = o->pkt_type;
    v.dbd_flags = o->dbd_flags;
    if (!o->lsas.empty()) {
      auto* slab =
          arena_->allocate_array<OspfDigest::LsaDigest>(o->lsas.size());
      for (std::size_t i = 0; i < o->lsas.size(); ++i) slab[i] = o->lsas[i];
      v.lsas = {slab, o->lsas.size()};
    }
    digest_ref_.push_back((kDigestOspf << kDigestKindShift) |
                          static_cast<std::uint32_t>(ospf_pool_.size()));
    ospf_pool_.push_back(v);
  } else if (const auto* r = std::get_if<RipDigest>(&digest)) {
    digest_ref_.push_back((kDigestRip << kDigestKindShift) |
                          static_cast<std::uint32_t>(rip_pool_.size()));
    rip_pool_.push_back(*r);
  } else if (const auto* b = std::get_if<BgpDigest>(&digest)) {
    digest_ref_.push_back((kDigestBgp << kDigestKindShift) |
                          static_cast<std::uint32_t>(bgp_pool_.size()));
    bgp_pool_.push_back(*b);
  } else {
    digest_ref_.push_back(kDigestNone);
  }
}

void TraceLog::append(PacketRecord record) {
  push_common(record.time, record.node, record.iface, record.direction,
              record.src, record.dst, record.protocol, record.frame_id,
              record.caused_by, record.observer_state,
              record.bytes.retain());
  push_digest(record.digest);
}

// Header-only OSPF digest, validation-equivalent to ospf::decode for every
// frame the simulator's encoders produce: version/type/AuType checks, the
// §D.4 header checksum (MD5 framing for AuType 2), body shape per packet
// type, and the per-LSA Fletcher checksum for LSUs. The one divergence is
// deliberate: interior LSA *body* malformations (e.g. a ragged router-LSA
// link block behind a correct Fletcher sum) pass here but fail full decode.
// Only hand-crafted traces can contain such frames, and those enter through
// load(), which digests via digest_frame's full decode.
bool TraceLog::fast_ospf_digest(std::span<const std::uint8_t> wire) {
  constexpr std::size_t kHdr = ospf::kOspfHeaderSize;    // 24
  constexpr std::size_t kLsaHdr = ospf::kLsaHeaderSize;  // 20
  if (wire.size() < kHdr) return false;
  const std::uint8_t* p = wire.data();
  if (p[0] != ospf::kOspfVersion) return false;
  const std::uint8_t type = p[1];
  if (type < 1 || type > 5) return false;
  const std::size_t length = be16(p + 2);
  if (length < kHdr) return false;
  const std::uint16_t au_type = be16(p + 14);
  if (au_type > 2) return false;
  if (au_type == 2) {
    // Cryptographic auth (§D.4.3): 16-byte digest trails the packet, the
    // length field excludes it, no standard checksum. Byte 19 is the
    // auth-data length.
    if (length + 16 != wire.size()) return false;
    if (p[19] != 16) return false;
  } else {
    if (length != wire.size()) return false;
    // §D.4: checksum covers the packet with the auth field (bytes 16..24)
    // excluded; summing around the hole avoids the copy decode makes.
    if (internet_checksum2(wire.first(16), wire.subspan(24, length - 24)) !=
        0)
      return false;
  }

  const std::uint8_t* body = p + kHdr;
  const std::size_t blen = length - kHdr;
  OspfView v;
  v.pkt_type = type;
  std::size_t lsa_count = 0;
  const std::uint8_t* headers = nullptr;  // dense LSA header array, if any

  switch (type) {
    case 1:  // Hello: 20-byte fixed part + 4-byte neighbor entries
      if (blen < 20 || (blen - 20) % 4 != 0) return false;
      break;
    case 2: {  // DBD: 8-byte fixed part + LSA header list
      if (blen < 8 || (blen - 8) % kLsaHdr != 0) return false;
      v.dbd_flags = body[3];
      headers = body + 8;
      lsa_count = (blen - 8) / kLsaHdr;
      break;
    }
    case 3:  // LSR: 12-byte request entries
      if (blen % 12 != 0) return false;
      for (std::size_t off = 0; off < blen; off += 12) {
        const std::uint32_t t = be32(body + off);
        if (t < 1 || t > 5) return false;
      }
      break;
    case 4: {  // LSU: count + variable-length LSAs
      if (blen < 4) return false;
      const std::uint32_t n = be32(body);
      std::size_t off = 4;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (blen - off < kLsaHdr) return false;
        const std::uint8_t* h = body + off;
        const std::uint8_t t = h[3];
        if (t < 1 || t > 5) return false;
        const std::size_t lsa_len = be16(h + 18);
        if (lsa_len < kLsaHdr || lsa_len > blen - off) return false;
        // §13 step 1: Fletcher over the LSA minus the LS age field.
        if (!fletcher_checksum_ok({h + 2, lsa_len - 2})) return false;
        off += lsa_len;
      }
      if (off != blen) return false;
      lsa_count = n;
      break;
    }
    case 5:  // LSAck: dense LSA header list
      if (blen % kLsaHdr != 0) return false;
      headers = body;
      lsa_count = blen / kLsaHdr;
      break;
  }

  if (headers != nullptr) {
    for (std::size_t i = 0; i < lsa_count; ++i) {
      const std::uint8_t t = headers[i * kLsaHdr + 3];
      if (t < 1 || t > 5) return false;
    }
  }

  if (lsa_count > 0) {
    auto* slab = arena_->allocate_array<OspfDigest::LsaDigest>(lsa_count);
    if (headers != nullptr) {  // dense 20-byte headers (DBD, LSAck)
      for (std::size_t i = 0; i < lsa_count; ++i)
        slab[i] = lsa_digest_from_header(headers + i * kLsaHdr);
    } else {  // LSU: stride by each LSA's length field
      std::size_t off = 4;
      for (std::size_t i = 0; i < lsa_count; ++i) {
        const std::uint8_t* h = body + off;
        slab[i] = lsa_digest_from_header(h);
        off += be16(h + 18);
      }
    }
    v.lsas = {slab, lsa_count};
  }

  digest_ref_.push_back((kDigestOspf << kDigestKindShift) |
                        static_cast<std::uint32_t>(ospf_pool_.size()));
  ospf_pool_.push_back(v);
  return true;
}

// Validation-equivalent to rip::decode (which the simulator's RIP frames
// always pass): header size, 20-byte entry grid, command/version ranges,
// per-entry metric range (AFI-0 entries exempt), 25-entry cap.
bool TraceLog::fast_rip_digest(std::span<const std::uint8_t> wire) {
  if (wire.size() < 4) return false;
  if ((wire.size() - 4) % 20 != 0) return false;
  const std::uint8_t* p = wire.data();
  const std::uint8_t cmd = p[0];
  if (cmd != 1 && cmd != 2) return false;
  const std::uint8_t version = p[1];
  if (version != 1 && version != rip::kRipVersion) return false;
  const std::size_t entries = (wire.size() - 4) / 20;
  if (entries > 25) return false;

  RipDigest d;
  d.command = cmd;
  d.entry_count = static_cast<std::uint16_t>(entries);
  std::uint16_t first_afi = 0xffff;
  std::uint32_t first_metric = 0;
  for (std::size_t i = 0; i < entries; ++i) {
    const std::uint8_t* e = p + 4 + i * 20;
    const std::uint16_t afi = be16(e);
    const std::uint32_t metric = be32(e + 16);
    if ((metric < 1 || metric > rip::kInfinityMetric) && afi != 0)
      return false;
    if (i == 0) {
      first_afi = afi;
      first_metric = metric;
    }
    d.max_metric = std::max(d.max_metric, metric);
  }
  d.full_table_request = cmd == 1 && entries == 1 && first_afi == 0 &&
                         first_metric == rip::kInfinityMetric;

  digest_ref_.push_back((kDigestRip << kDigestKindShift) |
                        static_cast<std::uint32_t>(rip_pool_.size()));
  rip_pool_.push_back(d);
  return true;
}

void TraceLog::on_tap(const netsim::TapEvent& ev) {
  const netsim::Frame& frame = *ev.frame;
  const int state = prober_ ? prober_(ev.node) : -1;
  // Sharing, not copying: the bytes column holds another reference to the
  // frame's payload cell.
  push_common(ev.time, ev.node, ev.iface, ev.direction, frame.src, frame.dst,
              frame.protocol, frame.id, frame.caused_by, state,
              keep_bytes_ ? frame.payload.retain() : nullptr);
  // Digest straight into the pools with the header-only fast parsers;
  // frames the full decoders would reject get no digest, exactly as
  // before. BGP stays on the full decoder: TCP streams are low-volume and
  // the UPDATE digest needs parsed path attributes.
  if (frame.protocol == ospf::kIpProtoOspf) {
    if (fast_ospf_digest(frame.payload)) return;
  } else if (frame.protocol == 17) {
    if (fast_rip_digest(frame.payload)) return;
  } else if (frame.protocol == 6) {
    auto decoded = bgp::decode(frame.payload);
    if (decoded.ok()) {
      const auto& msg = decoded.value();
      BgpDigest d;
      d.msg_type = static_cast<std::uint8_t>(msg.type());
      if (const auto* update = std::get_if<bgp::UpdateMessage>(&msg.body)) {
        d.as_path_len = static_cast<std::uint32_t>(update->as_path.size());
        d.nlri_count = static_cast<std::uint16_t>(update->nlri.size());
        d.withdrawn_count =
            static_cast<std::uint16_t>(update->withdrawn.size());
      } else if (const auto* notif =
                     std::get_if<bgp::NotificationMessage>(&msg.body)) {
        d.error_code = notif->error_code;
      }
      digest_ref_.push_back((kDigestBgp << kDigestKindShift) |
                            static_cast<std::uint32_t>(bgp_pool_.size()));
      bgp_pool_.push_back(d);
      return;
    }
  }
  digest_ref_.push_back(kDigestNone);
}

RecordView TraceLog::view(std::size_t i) const {
  RecordView v;
  v.time = time_[i];
  v.node = node_[i];
  v.iface = iface_[i];
  v.direction =
      send_[i] ? netsim::Direction::kSend : netsim::Direction::kRecv;
  v.src = Ipv4Addr{src_[i]};
  v.dst = Ipv4Addr{dst_[i]};
  v.protocol = protocol_[i];
  v.frame_id = frame_id_[i];
  v.caused_by = caused_by_[i];
  v.observer_state = observer_state_[i];
  v.bytes = util::SharedBytes::from_handle(bytes_[i]);
  const std::uint32_t ref = digest_ref_[i];
  const std::uint32_t idx = ref & kDigestIndexMask;
  switch (ref >> kDigestKindShift) {
    case kDigestOspf: v.ospf_ = &ospf_pool_[idx]; break;
    case kDigestRip: v.rip_ = &rip_pool_[idx]; break;
    case kDigestBgp: v.bgp_ = &bgp_pool_[idx]; break;
    default: break;
  }
  return v;
}

std::span<const std::uint32_t> TraceLog::node_records(
    netsim::NodeId node) const {
  return node < by_node_.size() ? by_node_[node].span()
                                : std::span<const std::uint32_t>{};
}

std::size_t TraceLog::observed_nodes() const {
  std::size_t n = 0;
  for (const auto& idx : by_node_)
    if (!idx.empty()) ++n;
  return n;
}

void TraceLog::clear() {
  release_bytes();
  time_.clear();
  node_.clear();
  iface_.clear();
  send_.clear();
  src_.clear();
  dst_.clear();
  protocol_.clear();
  frame_id_.clear();
  caused_by_.clear();
  observer_state_.clear();
  digest_ref_.clear();
  bytes_.clear();
  ospf_pool_.clear();
  rip_pool_.clear();
  bgp_pool_.clear();
  by_node_.clear();
  // One reset releases every column, pool, slab and index at once; the
  // chunks stay with the arena, so refilling reuses the same pages.
  arena_->reset();
}

void TraceLog::dump(std::ostream& os, const netsim::Network& net) const {
  for (std::size_t i = 0; i < size(); ++i) {
    os << format_time(time_[i]) << ' ' << net.node_name(node_[i]) << " if"
       << iface_[i] << (send_[i] ? " SEND " : " RECV ")
       << Ipv4Addr{src_[i]}.to_string() << " -> "
       << Ipv4Addr{dst_[i]}.to_string();
    const std::uint32_t ref = digest_ref_[i];
    const std::uint32_t idx = ref & kDigestIndexMask;
    switch (ref >> kDigestKindShift) {
      case kDigestOspf: {
        const OspfView& o = ospf_pool_[idx];
        os << " OSPF type=" << int(o.pkt_type) << " lsas=" << o.lsas.size();
        break;
      }
      case kDigestRip: {
        const RipDigest& r = rip_pool_[idx];
        os << " RIP cmd=" << int(r.command) << " entries=" << r.entry_count;
        break;
      }
      default:
        os << " proto=" << int(protocol_[i]) << " ("
           << util::SharedBytes::handle_span(bytes_[i]).size() << " bytes)";
    }
    if (caused_by_[i] != 0) os << " caused_by=#" << caused_by_[i];
    os << " frame=#" << frame_id_[i] << '\n';
  }
}

void TraceLog::save(std::ostream& os) const {
  os << "nidkit-trace v1 " << size() << '\n';
  for (std::size_t i = 0; i < size(); ++i) {
    os << time_[i].count() << ' ' << node_[i] << ' ' << iface_[i] << ' '
       << (send_[i] ? 'S' : 'R') << ' ' << src_[i] << ' ' << dst_[i] << ' '
       << int(protocol_[i]) << ' ' << frame_id_[i] << ' ' << caused_by_[i]
       << ' ' << observer_state_[i] << ' ';
    static constexpr char kHexDigits[] = "0123456789abcdef";
    const auto bytes = util::SharedBytes::handle_span(bytes_[i]);
    if (bytes.empty()) {
      os << '-';
    } else {
      for (const auto b : bytes) {
        os << kHexDigits[b >> 4] << kHexDigits[b & 0xf];
      }
    }
    os << '\n';
  }
}

Result<TraceLog> TraceLog::load(std::istream& is) {
  std::string magic, version;
  std::size_t count = 0;
  if (!(is >> magic >> version >> count) || magic != "nidkit-trace" ||
      version != "v1") {
    return fail("not a nidkit-trace v1 stream");
  }
  TraceLog log;
  for (std::size_t i = 0; i < count; ++i) {
    PacketRecord r;
    long long time_us = 0;
    char dir = 0;
    std::uint32_t src = 0, dst = 0;
    int protocol = 0;
    std::string hex;
    if (!(is >> time_us >> r.node >> r.iface >> dir >> src >> dst >>
          protocol >> r.frame_id >> r.caused_by >> r.observer_state >> hex)) {
      return fail("truncated trace at record " + std::to_string(i));
    }
    if (dir != 'S' && dir != 'R')
      return fail("bad direction at record " + std::to_string(i));
    r.time = SimTime{time_us};
    r.direction = dir == 'S' ? netsim::Direction::kSend
                             : netsim::Direction::kRecv;
    r.src = Ipv4Addr{src};
    r.dst = Ipv4Addr{dst};
    r.protocol = static_cast<std::uint8_t>(protocol);
    if (hex != "-") {
      if (hex.size() % 2 != 0)
        return fail("ragged hex at record " + std::to_string(i));
      auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      std::vector<std::uint8_t> bytes;
      bytes.reserve(hex.size() / 2);
      for (std::size_t k = 0; k < hex.size(); k += 2) {
        const int hi = nibble(hex[k]);
        const int lo = nibble(hex[k + 1]);
        if (hi < 0 || lo < 0)
          return fail("bad hex at record " + std::to_string(i));
        bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
      }
      r.bytes = util::SharedBytes(bytes);
      // Imported bytes re-digest through the full wire codecs: external
      // traces may carry malformations only the full decoders reject.
      netsim::Frame reparse;
      reparse.protocol = r.protocol;
      reparse.payload = r.bytes;
      r.digest = digest_frame(reparse);
    }
    log.append(std::move(r));
  }
  return log;
}

}  // namespace nidkit::trace
