// pcap export: write a captured trace as a standard libpcap file that
// Wireshark/tcpdump can open.
//
// The simulator carries routing-protocol payloads without IP headers (the
// miner never needs them), so the exporter synthesizes a valid IPv4 header
// per record — correct version/IHL, total length, TTL, protocol, source/
// destination and header checksum — in front of the raw protocol bytes.
// Link type is LINKTYPE_RAW (101): packets begin directly with the IPv4
// header.
//
// Each record appears once per observation (send and receive), matching
// what per-router tcpdump instances produce; filter by direction before
// exporting to get a single-vantage capture.
#pragma once

#include <optional>
#include <ostream>

#include "trace/trace.hpp"

namespace nidkit::trace {

/// Export options.
struct PcapOptions {
  /// Keep only records observed at this node (-1 = all nodes).
  int node = -1;
  /// Keep only records with this direction (nullopt = both).
  std::optional<netsim::Direction> direction;
};

/// Writes `log` to `os` in pcap format. Returns the number of packets
/// written. Records without raw bytes are skipped (there is nothing to
/// put on the wire).
std::size_t export_pcap(const TraceLog& log, std::ostream& os,
                        const PcapOptions& options = {});

/// Builds the synthesized IPv4 header + payload for one record (exposed
/// for tests).
std::vector<std::uint8_t> synthesize_ip_packet(const RecordView& record);

}  // namespace nidkit::trace
