// Checksums used by the OSPFv2 wire format.
//
// * RFC 1071 "internet checksum" covers the OSPF packet header + body
//   (with the checksum field itself zeroed).
// * The Fletcher checksum (ISO 8473 / RFC 905 annex B, as profiled by
//   RFC 2328 §12.1.7) covers each LSA, excluding the LS age field.
//
// Both are implemented exactly as routers compute them so that a trace from
// the simulator is bit-compatible with a capture of real daemons.
#pragma once

#include <cstdint>
#include <span>

namespace nidkit {

/// RFC 1071 internet checksum over `data`. The caller must zero the
/// checksum field in the buffer before calling.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Verifies an embedded internet checksum: the checksum over a buffer that
/// already contains its checksum field folds to zero.
bool internet_checksum_ok(std::span<const std::uint8_t> data);

/// Internet checksum of the logical concatenation `head ++ tail` without
/// materializing it. `head.size()` must be even so `tail` starts on a
/// 16-bit word boundary. Used by the trace tap's OSPF digest parser to
/// verify the header checksum with the 8-byte authentication field
/// excluded (zeros contribute nothing to a one's-complement sum, so
/// summing around the hole equals summing a zero-filled copy).
std::uint16_t internet_checksum2(std::span<const std::uint8_t> head,
                                 std::span<const std::uint8_t> tail);

/// ISO/Fletcher checksum as used for OSPF LSAs (RFC 2328 §12.1.7).
///
/// `lsa` is the complete LSA *excluding the 2-byte LS age field* (i.e.
/// starting at the Options byte), with the 2-byte checksum field zeroed.
/// `checksum_offset` is the byte offset of the checksum field within `lsa`
/// (14 for a standard LSA header once the age is stripped).
std::uint16_t fletcher_checksum(std::span<const std::uint8_t> lsa,
                                std::size_t checksum_offset);

/// Verifies a Fletcher checksum embedded at `checksum_offset` within `lsa`
/// (again excluding the LS age field).
bool fletcher_checksum_ok(std::span<const std::uint8_t> lsa);

}  // namespace nidkit
