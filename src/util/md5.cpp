#include "util/md5.hpp"

#include <cstring>

namespace nidkit {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int c) {
  return (x << c) | (x >> (32 - c));
}

// Per-round shift amounts and sine-derived constants (RFC 1321 §3.4).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

void process_block(const std::uint8_t* block, std::uint32_t state[4]) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = std::uint32_t{block[i * 4]} |
           (std::uint32_t{block[i * 4 + 1]} << 8) |
           (std::uint32_t{block[i * 4 + 2]} << 16) |
           (std::uint32_t{block[i * 4 + 3]} << 24);
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f = 0;
    int g = 0;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
}

}  // namespace

std::array<std::uint8_t, 16> md5(std::span<const std::uint8_t> data) {
  std::uint32_t state[4] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476};

  std::size_t i = 0;
  for (; i + 64 <= data.size(); i += 64) process_block(data.data() + i, state);

  // Final block(s): remaining bytes + 0x80 + zero padding + 64-bit
  // little-endian bit length.
  std::uint8_t tail[128] = {};
  const std::size_t rem = data.size() - i;
  std::memcpy(tail, data.data() + i, rem);
  tail[rem] = 0x80;
  const std::size_t tail_len = (rem < 56) ? 64 : 128;
  const std::uint64_t bits = std::uint64_t{data.size()} * 8;
  for (int k = 0; k < 8; ++k)
    tail[tail_len - 8 + k] = static_cast<std::uint8_t>(bits >> (8 * k));
  process_block(tail, state);
  if (tail_len == 128) process_block(tail + 64, state);

  std::array<std::uint8_t, 16> out;
  for (int w = 0; w < 4; ++w)
    for (int k = 0; k < 4; ++k)
      out[w * 4 + k] = static_cast<std::uint8_t>(state[w] >> (8 * k));
  return out;
}

std::string md5_hex(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  const auto digest = md5(data);
  std::string out;
  out.reserve(32);
  for (const auto b : digest) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace nidkit
