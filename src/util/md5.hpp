// MD5 message digest (RFC 1321), implemented from scratch.
//
// Needed by OSPFv2 cryptographic authentication (RFC 2328 §D.4.3), which
// appends MD5(packet || padded-secret) to each packet. MD5 is long broken
// for security purposes; it is implemented here because the protocol
// specifies it, not because it is a good MAC.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace nidkit {

/// The 16-byte MD5 digest of `data`.
std::array<std::uint8_t, 16> md5(std::span<const std::uint8_t> data);

/// Digest rendered as 32 lowercase hex characters (for tests and logs).
std::string md5_hex(std::span<const std::uint8_t> data);

}  // namespace nidkit
