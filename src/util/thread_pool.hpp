// Fixed-size worker pool for fanning out independent deterministic jobs.
//
// The harness runs every (topology, seed, implementation) scenario as an
// isolated single-threaded simulation; the pool only provides the fan-out.
// There is deliberately no work stealing and no dynamic sizing: submission
// order is FIFO, results travel back through futures, and all ordering
// decisions (merge order, report order) are made by the caller so that the
// parallel path can be bit-identical to the serial one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nidkit {

/// Worker count used when a caller asks for "as many as the hardware
/// allows": hardware_concurrency, never less than 1.
std::size_t default_worker_count();

class ThreadPool {
 public:
  /// Spawns exactly `workers` threads (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains the queue — every submitted task still runs — then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Observability counters for the experiment report.
  struct Counters {
    std::uint64_t tasks_run = 0;
    std::size_t max_queue_depth = 0;  ///< high-water mark of queued tasks
  };
  Counters counters() const;

  /// Enqueues `fn` and returns the future for its result. Exceptions
  /// thrown by `fn` surface through the future.
  template <typename Fn>
  auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
      if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
    }
    wakeup_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable wakeup_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t max_queue_depth_ = 0;
  std::uint64_t tasks_run_ = 0;
  bool stopping_ = false;
};

}  // namespace nidkit
