// Refcounted immutable byte buffer.
//
// A routing packet is encoded exactly once per transmission, but the old
// Frame carried its payload in a std::vector that was copied at every hop:
// once per LAN fan-out delivery, once into each in-flight delivery closure,
// and once more into every TraceLog record. SharedBytes replaces those
// copies with a refcount bump on a single allocation (control block and
// data in one cell). The buffer is immutable after construction, so sharing
// is safe by construction; the refcount is atomic because traces (and the
// frames they reference) migrate between worker threads in the parallel
// executor.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <span>
#include <vector>

namespace nidkit::util {

class SharedBytes {
 public:
  SharedBytes() noexcept = default;

  SharedBytes(std::span<const std::uint8_t> data) {  // NOLINT: implicit
    if (!data.empty()) ctrl_ = Ctrl::make(data.data(), data.size());
  }
  SharedBytes(const std::vector<std::uint8_t>& v)  // NOLINT: implicit
      : SharedBytes(std::span<const std::uint8_t>(v)) {}
  SharedBytes(std::initializer_list<std::uint8_t> il) {
    if (il.size() != 0) ctrl_ = Ctrl::make(il.begin(), il.size());
  }

  SharedBytes(const SharedBytes& other) noexcept : ctrl_(other.ctrl_) {
    if (ctrl_) ctrl_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  SharedBytes(SharedBytes&& other) noexcept : ctrl_(other.ctrl_) {
    other.ctrl_ = nullptr;
  }
  SharedBytes& operator=(const SharedBytes& other) noexcept {
    SharedBytes tmp(other);
    swap(tmp);
    return *this;
  }
  SharedBytes& operator=(SharedBytes&& other) noexcept {
    swap(other);
    return *this;
  }
  ~SharedBytes() { release(); }

  void swap(SharedBytes& other) noexcept { std::swap(ctrl_, other.ctrl_); }

  const std::uint8_t* data() const noexcept {
    return ctrl_ ? ctrl_->bytes() : nullptr;
  }
  std::size_t size() const noexcept { return ctrl_ ? ctrl_->size : 0; }
  bool empty() const noexcept { return size() == 0; }
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }

  const std::uint8_t* begin() const noexcept { return data(); }
  const std::uint8_t* end() const noexcept { return data() + size(); }

  /// All wire codecs take spans, so frames decode without copies.
  operator std::span<const std::uint8_t>() const noexcept {  // NOLINT
    return {data(), size()};
  }
  std::span<const std::uint8_t> span() const noexcept { return *this; }

  std::vector<std::uint8_t> to_vector() const {
    return {begin(), end()};
  }

  /// Number of owners of the underlying cell (0 for the empty buffer).
  /// Observability hook for tests; racy by nature under sharing.
  std::size_t use_count() const noexcept {
    return ctrl_ ? ctrl_->refs.load(std::memory_order_relaxed) : 0;
  }

  /// Opaque retained-handle API for columnar containers (the trace log's
  /// bytes column) that store many buffers as raw words in arena memory,
  /// where no destructor will ever run. `retain()` returns the buffer's
  /// cell with its refcount bumped (nullptr for the empty buffer); the
  /// holder must eventually pass it to `release_handle`. `from_handle`
  /// mints a new owner from a live handle; `handle_span` borrows the bytes
  /// without touching the refcount.
  using Handle = void*;
  Handle retain() const noexcept {
    if (ctrl_) ctrl_->refs.fetch_add(1, std::memory_order_relaxed);
    return ctrl_;
  }
  static void release_handle(Handle h) noexcept {
    SharedBytes tmp;
    tmp.ctrl_ = static_cast<Ctrl*>(h);
    // tmp's destructor performs the matched release.
  }
  static SharedBytes from_handle(Handle h) noexcept {
    SharedBytes out;
    out.ctrl_ = static_cast<Ctrl*>(h);
    if (out.ctrl_) out.ctrl_->refs.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  static std::span<const std::uint8_t> handle_span(Handle h) noexcept {
    Ctrl* c = static_cast<Ctrl*>(h);
    return c ? std::span<const std::uint8_t>{c->bytes(), c->size}
             : std::span<const std::uint8_t>{};
  }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    if (a.ctrl_ == b.ctrl_) return true;
    return a.size() == b.size() &&
           (a.size() == 0 ||
            std::memcmp(a.data(), b.data(), a.size()) == 0);
  }

 private:
  struct Ctrl {
    std::atomic<std::uint32_t> refs;
    std::uint32_t size;

    std::uint8_t* bytes() noexcept {
      return reinterpret_cast<std::uint8_t*>(this + 1);
    }

    static Ctrl* make(const std::uint8_t* src, std::size_t n) {
      void* raw = ::operator new(sizeof(Ctrl) + n);
      Ctrl* c = ::new (raw) Ctrl{};
      c->refs.store(1, std::memory_order_relaxed);
      c->size = static_cast<std::uint32_t>(n);
      std::memcpy(c->bytes(), src, n);
      return c;
    }
  };

  void release() noexcept {
    if (ctrl_ &&
        ctrl_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ctrl_->~Ctrl();
      ::operator delete(ctrl_);
    }
    ctrl_ = nullptr;
  }

  Ctrl* ctrl_ = nullptr;
};

}  // namespace nidkit::util
