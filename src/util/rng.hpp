// Deterministic pseudo-random number generation.
//
// Every scenario takes a seed and derives all timing jitter, loss decisions
// and reordering from one xoshiro256++ stream, so experiments are exactly
// reproducible: the same (scenario, seed) pair always yields the same trace
// and therefore the same mined relationship tables.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace nidkit {

/// xoshiro256++ generator (Blackman & Vigna). Small, fast, and — unlike
/// std::mt19937 across standard libraries — bit-for-bit portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform duration in [lo, hi].
  SimDuration jitter(SimDuration lo, SimDuration hi);

  /// Derives an independent child stream. Used to give each router / link
  /// its own stream so adding a component does not perturb others' draws.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace nidkit
