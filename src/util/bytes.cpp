#include "util/bytes.hpp"

namespace nidkit {

std::string hex_dump(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2 + data.size() / 4);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0 && i % 4 == 0) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

}  // namespace nidkit
