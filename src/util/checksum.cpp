#include "util/checksum.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace nidkit {

namespace {

// ---- RFC 1071 internet checksum, a word at a time -------------------------
//
// The one's-complement sum is byte-order independent (RFC 1071 §2B): sum
// the buffer as native-endian 16/64-bit words with end-around carry, fold
// to 16 bits, and byte-swap once at the end on little-endian hosts. That
// turns the per-byte-pair loop into 8-bytes-per-add with a single carry
// fixup, which is what makes verifying every OSPF frame on the trace tap
// path affordable.

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
inline std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline std::uint16_t load16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

/// One's-complement accumulation over `data` as native-endian words. The
/// span must start on an even byte offset of the logical message (16-bit
/// word phase) for sums of multiple spans to compose.
std::uint64_t ones_sum(std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t sum = 0;
  auto add = [&sum](std::uint64_t v) {
    sum += v;
    if (sum < v) ++sum;  // end-around carry
  };
  while (n >= 32) {
    add(load64(p));
    add(load64(p + 8));
    add(load64(p + 16));
    add(load64(p + 24));
    p += 32;
    n -= 32;
  }
  if (n >= 16) {
    add(load64(p));
    add(load64(p + 8));
    p += 16;
    n -= 16;
  }
  if (n >= 8) {
    add(load64(p));
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    add(load32(p));
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    add(load16(p));
    p += 2;
    n -= 2;
  }
  if (n == 1) {
    // The trailing odd byte pads with zero: it is the high byte of the
    // final big-endian word, which is the low byte in native order on
    // little-endian hosts.
    if constexpr (std::endian::native == std::endian::little) {
      add(*p);
    } else {
      add(std::uint64_t{*p} << 8);
    }
  }
  return sum;
}

/// Folds a 64-bit one's-complement accumulator to the final big-endian
/// 16-bit checksum (complemented).
std::uint16_t finish(std::uint64_t sum) {
  sum = (sum & 0xffffffffu) + (sum >> 32);
  sum = (sum & 0xffffu) + (sum >> 16);
  sum = (sum & 0xffffu) + (sum >> 16);
  sum = (sum & 0xffffu) + (sum >> 16);
  auto s16 = static_cast<std::uint16_t>(sum);
  if constexpr (std::endian::native == std::endian::little) {
    s16 = static_cast<std::uint16_t>((s16 >> 8) | (s16 << 8));
  }
  return static_cast<std::uint16_t>(~s16);
}

// ---- Fletcher checksum, a block at a time ---------------------------------

/// Advances Fletcher accumulators over one block. The closed form per
/// 16-byte group — c1 += 16·c0 + Σ(16−j)·b_j, c0 += Σ b_j — replaces the
/// serial c0→c1 dependency chain with two independent weighted sums the
/// compiler can vectorize. Accumulators must be < 2^10 on entry and the
/// block at most 4 MiB so c1 (≈ 255·len²/2 + len·c0) stays far below
/// 2^64.
void fletcher_block(const std::uint8_t* p, std::size_t n, std::uint64_t& c0_io,
                    std::uint64_t& c1_io) {
  std::uint64_t c0 = c0_io;
  std::uint64_t c1 = c1_io;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    std::uint64_t s = 0;  // Σ b_j
    std::uint64_t w = 0;  // Σ (16−j)·b_j
    for (std::size_t j = 0; j < 16; ++j) {
      s += p[i + j];
      w += (16 - j) * std::uint64_t{p[i + j]};
    }
    c1 += 16 * c0 + w;
    c0 += s;
  }
  for (; i < n; ++i) {
    c0 += p[i];
    c1 += c0;
  }
  c0_io = c0;
  c1_io = c1;
}

constexpr std::size_t kFletcherChunk = std::size_t{1} << 22;  // 4 MiB

/// Accumulates `n` bytes, reducing mod 255 between chunks so the 64-bit
/// accumulators cannot overflow on absurdly long inputs.
void fletcher_accumulate(const std::uint8_t* p, std::size_t n,
                         std::uint64_t& c0, std::uint64_t& c1) {
  while (n > kFletcherChunk) {
    fletcher_block(p, kFletcherChunk, c0, c1);
    c0 %= 255;
    c1 %= 255;
    p += kFletcherChunk;
    n -= kFletcherChunk;
  }
  fletcher_block(p, n, c0, c1);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return finish(ones_sum(data));
}

bool internet_checksum_ok(std::span<const std::uint8_t> data) {
  // Summing a buffer that includes a correct checksum yields 0xffff, whose
  // one's complement is zero.
  return internet_checksum(data) == 0;
}

std::uint16_t internet_checksum2(std::span<const std::uint8_t> head,
                                 std::span<const std::uint8_t> tail) {
  std::uint64_t sum = ones_sum(head);
  const std::uint64_t t = ones_sum(tail);
  sum += t;
  if (sum < t) ++sum;
  return finish(sum);
}

std::uint16_t fletcher_checksum(std::span<const std::uint8_t> lsa,
                                std::size_t checksum_offset) {
  // RFC 905 annex B with deferred modulo (RFC 1008 style). c0/c1
  // accumulate over the LSA with the checksum bytes treated as zero; X/Y
  // are then placed at checksum_offset.
  std::uint64_t c0 = 0;
  std::uint64_t c1 = 0;
  const std::size_t n = lsa.size();
  if (checksum_offset >= n) {
    fletcher_accumulate(lsa.data(), n, c0, c1);
  } else {
    fletcher_accumulate(lsa.data(), checksum_offset, c0, c1);
    // The checksum bytes count as zeros: c0 unchanged, c1 += c0 each.
    const std::size_t zeros = std::min<std::size_t>(2, n - checksum_offset);
    c1 += zeros * c0;
    const std::size_t rest = checksum_offset + zeros;
    fletcher_accumulate(lsa.data() + rest, n - rest, c0, c1);
  }
  const auto m0 = static_cast<std::int32_t>(c0 % 255);
  const auto m1 = static_cast<std::int32_t>(c1 % 255);

  // With c1 accumulating byte i at weight (L - i), placing X at offset o
  // and Y at o+1 must zero both sums:
  //   C0 + X + Y ≡ 0  and  C1 + (L-o)·X + (L-o-1)·Y ≡ 0   (mod 255)
  // which solves to X = (L-o-1)·C0 - C1 and Y = -C0 - X.
  const auto len = static_cast<std::int32_t>(lsa.size());
  const auto off = static_cast<std::int32_t>(checksum_offset);
  std::int32_t x = ((len - off - 1) * m0 - m1) % 255;
  if (x < 0) x += 255;
  std::int32_t y = (-m0 - x) % 255;
  if (y < 0) y += 255;
  return static_cast<std::uint16_t>((x << 8) | y);
}

bool fletcher_checksum_ok(std::span<const std::uint8_t> lsa) {
  // For verification, sum the LSA as transmitted (checksum included); both
  // accumulators must fold to zero mod 255.
  std::uint64_t c0 = 0;
  std::uint64_t c1 = 0;
  fletcher_accumulate(lsa.data(), lsa.size(), c0, c1);
  return (c0 % 255) == 0 && (c1 % 255) == 0;
}

}  // namespace nidkit
