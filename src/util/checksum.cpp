#include "util/checksum.hpp"

#include <vector>

namespace nidkit {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint32_t{data[i]} << 8) | std::uint32_t{data[i + 1]};
  }
  if (i < data.size()) sum += std::uint32_t{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

bool internet_checksum_ok(std::span<const std::uint8_t> data) {
  // Summing a buffer that includes a correct checksum yields 0xffff, whose
  // one's complement is zero.
  return internet_checksum(data) == 0;
}

std::uint16_t fletcher_checksum(std::span<const std::uint8_t> lsa,
                                std::size_t checksum_offset) {
  // RFC 905 annex B, with the modulo deferred the way real implementations
  // (and RFC 1008) do it. c0/c1 accumulate over the LSA with the checksum
  // bytes treated as zero; X/Y are then placed at checksum_offset.
  std::int32_t c0 = 0;
  std::int32_t c1 = 0;
  for (std::size_t i = 0; i < lsa.size(); ++i) {
    const std::uint8_t byte =
        (i == checksum_offset || i == checksum_offset + 1) ? 0 : lsa[i];
    c0 += byte;
    c1 += c0;
    if ((i % 4102) == 4101) {  // avoid 32-bit overflow on long LSAs
      c0 %= 255;
      c1 %= 255;
    }
  }
  c0 %= 255;
  c1 %= 255;

  // With c1 accumulating byte i at weight (L - i), placing X at offset o
  // and Y at o+1 must zero both sums:
  //   C0 + X + Y ≡ 0  and  C1 + (L-o)·X + (L-o-1)·Y ≡ 0   (mod 255)
  // which solves to X = (L-o-1)·C0 - C1 and Y = -C0 - X.
  const auto len = static_cast<std::int32_t>(lsa.size());
  const auto off = static_cast<std::int32_t>(checksum_offset);
  std::int32_t x = ((len - off - 1) * c0 - c1) % 255;
  if (x < 0) x += 255;
  std::int32_t y = (-c0 - x) % 255;
  if (y < 0) y += 255;
  return static_cast<std::uint16_t>((x << 8) | y);
}

bool fletcher_checksum_ok(std::span<const std::uint8_t> lsa) {
  // For verification, sum the LSA as transmitted (checksum included); both
  // accumulators must fold to zero mod 255.
  std::int32_t c0 = 0;
  std::int32_t c1 = 0;
  for (std::size_t i = 0; i < lsa.size(); ++i) {
    c0 += lsa[i];
    c1 += c0;
    if ((i % 4102) == 4101) {
      c0 %= 255;
      c1 %= 255;
    }
  }
  return (c0 % 255) == 0 && (c1 % 255) == 0;
}

}  // namespace nidkit
