#include "util/log.hpp"

#include <cstdio>

namespace nidkit {

std::atomic<LogLevel> Log::level_{LogLevel::kOff};

void Log::write(LogLevel level, SimTime when, const std::string& tag,
                const std::string& message) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%10s] %-5s [%s] %s\n", format_time(when).c_str(),
               kNames[static_cast<int>(level)], tag.c_str(), message.c_str());
}

}  // namespace nidkit
