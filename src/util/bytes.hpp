// Network byte-order (big-endian) serialization primitives.
//
// All wire formats in this repository go through ByteWriter / ByteReader so
// that every packet that crosses a simulated link is a real byte string, as
// it would be on the paper's Docker testbed. ByteReader never throws: every
// read reports success via the return value and a sticky error flag, so
// decoders can validate truncated or corrupted packets cheaply.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace nidkit {

/// Appends big-endian integers and raw bytes to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u24(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// Overwrites a previously written big-endian u16 at `offset`.
  /// Used to patch length and checksum fields after the body is known.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> view() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::vector<std::uint8_t>& data() { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads big-endian integers from a byte span with sticky error tracking.
///
/// A read past the end sets the error flag and returns zero; callers
/// typically decode a whole structure and then check `ok()` once.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!require(2)) return 0;
    const std::uint16_t v = (std::uint16_t{data_[pos_]} << 8) |
                            std::uint16_t{data_[pos_ + 1]};
    pos_ += 2;
    return v;
  }
  std::uint32_t u24() {
    if (!require(3)) return 0;
    const std::uint32_t v = (std::uint32_t{data_[pos_]} << 16) |
                            (std::uint32_t{data_[pos_ + 1]} << 8) |
                            std::uint32_t{data_[pos_ + 2]};
    pos_ += 3;
    return v;
  }
  std::uint32_t u32() {
    if (!require(4)) return 0;
    const std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                            (std::uint32_t{data_[pos_ + 1]} << 16) |
                            (std::uint32_t{data_[pos_ + 2]} << 8) |
                            std::uint32_t{data_[pos_ + 3]};
    pos_ += 4;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  /// Reads `n` raw bytes; returns an empty span (and sets the error flag)
  /// if fewer than `n` remain.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!require(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) {
    if (require(n)) pos_ += n;
  }

  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  std::size_t position() const { return pos_; }
  bool ok() const { return ok_; }

 private:
  bool require(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Renders bytes as lowercase hex, space-separated every 4 bytes.
/// Debug aid for traces and test failure messages.
std::string hex_dump(std::span<const std::uint8_t> data);

}  // namespace nidkit
