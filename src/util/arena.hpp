// Per-scenario monotonic arena.
//
// A traced scenario appends hundreds of thousands of fixed-width trace
// events and tears the whole lot down at once when the ScenarioResult dies.
// That lifetime is exactly what a bump allocator wants: allocation is a
// pointer increment into the current chunk, there is no per-object free,
// and teardown releases chunks wholesale. Chunks are recycled through a
// process-wide pool, so the thousands of scenarios in a sweep reuse the
// same pages instead of asking the OS again — a fresh arena's first
// allocations land in still-warm memory from the previous scenario.
//
// Restrictions, by design:
//   * no deallocate: reset() rewinds everything at once;
//   * single-threaded: one arena per TraceLog, one TraceLog per scenario,
//     scenarios never share arenas across workers (the pool itself is
//     mutex-guarded);
//   * objects placed in the arena must be trivially destructible — nothing
//     runs destructors for them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

namespace nidkit::util {

class Arena {
 public:
  Arena() noexcept = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = delete;
  Arena& operator=(Arena&&) = delete;

  /// Bump-allocates `size` bytes aligned to `align` (a power of two).
  /// Never returns nullptr; chunk refill throws std::bad_alloc on OOM like
  /// any other allocator.
  void* allocate(std::size_t size, std::size_t align) {
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
    if (p + size > limit_) [[unlikely]] {
      return allocate_slow(size, align);
    }
    cursor_ = p + size;
    bytes_allocated_ += size;
    return reinterpret_cast<void*>(p);
  }

  /// Uninitialized storage for `n` elements of trivially destructible T.
  template <typename T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds every allocation. Chunks stay attached to this arena, so a
  /// cleared-and-refilled TraceLog reuses its own memory without touching
  /// the pool.
  void reset() noexcept;

  /// Total bytes handed out since construction/reset (diagnostics).
  std::size_t bytes_allocated() const noexcept { return bytes_allocated_; }
  /// Number of chunks currently owned by this arena (diagnostics).
  std::size_t chunk_count() const noexcept;

  /// Chunks cached process-wide for reuse (test/diagnostic hook).
  static std::size_t pool_chunks() noexcept;
  /// Drops every pooled chunk back to the OS (test hook; e.g. before a
  /// leak-checked section).
  static void trim_pool() noexcept;

 private:
  struct Chunk {
    Chunk* next = nullptr;
    std::size_t size = 0;  ///< usable payload bytes following this header
    std::uintptr_t begin() noexcept {
      return reinterpret_cast<std::uintptr_t>(this + 1);
    }
  };

  void* allocate_slow(std::size_t size, std::size_t align);

  Chunk* head_ = nullptr;     ///< chunk currently being bumped
  Chunk* reserve_ = nullptr;  ///< chunks kept across reset() for reuse
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t next_chunk_size_ = 0;
  std::size_t bytes_allocated_ = 0;
};

}  // namespace nidkit::util
