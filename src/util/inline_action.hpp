// Move-only type-erased callable with small-buffer storage.
//
// The simulator schedules millions of short-lived closures per run; storing
// them as std::function costs a heap allocation each time the capture list
// outgrows libstdc++'s 16-byte inline buffer (a delivery closure carries a
// whole Frame, so it always does). InlineAction widens the inline buffer to
// fit every closure the hot path creates — timer re-arms, frame deliveries,
// chaos windows — so steady-state scheduling never touches the heap.
// Oversized or throwing-move callables still work; they transparently fall
// back to a heap cell (cold paths only: nothing in src/ needs it today).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nidkit::util {

class InlineAction {
 public:
  /// Inline capacity. Sized for the largest hot-path closure: a frame
  /// delivery captures {Network*, SegmentId, NodeId, IfaceIndex, Frame}
  /// (~64 bytes with a refcounted payload); a chaos window captures a
  /// whole FaultModel (~68 bytes).
  static constexpr std::size_t kInlineSize = 72;

  InlineAction() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineAction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineAction(F&& f) {  // NOLINT: implicit, mirrors std::function
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineAction(InlineAction&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs into `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) noexcept {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* p) noexcept { delete *static_cast<D**>(p); },
  };

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace nidkit::util
