#include "util/ip.hpp"

#include <cstdio>

namespace nidkit {

bool Ipv4Addr::parse(const std::string& text, Ipv4Addr* out) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int n =
      std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) return false;
  *out = Ipv4Addr(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                  static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
  return true;
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace nidkit
