// IPv4 address / router-id strong types.
//
// OSPF identifies routers, areas and links with 32-bit values rendered in
// dotted-quad notation. We wrap the raw word in a strong type so a router id
// cannot be silently confused with, say, an LSA sequence number.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace nidkit {

/// A 32-bit IPv4 address in host byte order.
///
/// Also used (per RFC 2328) for OSPF Router IDs and Area IDs, which share
/// the dotted-quad representation but are not addresses; see the RouterId
/// and AreaId aliases below.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("10.0.0.1"). Returns false on malformed
  /// input and leaves *out untouched.
  static bool parse(const std::string& text, Ipv4Addr* out);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  constexpr bool is_zero() const { return value_ == 0; }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// OSPF Router ID: a 32-bit identifier, unique per router, dotted-quad.
using RouterId = Ipv4Addr;

/// OSPF Area ID (we model a single backbone area, 0.0.0.0).
using AreaId = Ipv4Addr;

/// The OSPF backbone area.
inline constexpr AreaId kBackboneArea{};

/// AllSPFRouters multicast group (224.0.0.5), destination of most OSPF
/// packets on broadcast networks and all packets on point-to-point links.
inline constexpr Ipv4Addr kAllSpfRouters{224, 0, 0, 5};

/// AllDRouters multicast group (224.0.0.6), listened to by the DR/BDR.
inline constexpr Ipv4Addr kAllDRouters{224, 0, 0, 6};

}  // namespace nidkit
