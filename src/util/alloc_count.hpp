// Global-allocation counter hook.
//
// Linking the companion nidkit_alloc_count library replaces the global
// operator new/delete with counting forwarders. Binaries that need to
// prove an allocation budget (bench/bench_simcore, the alloc-budget
// regression test) link it and read the counter around the measured
// region; everything else never references these symbols and pays
// nothing. The counter is a relaxed atomic: the simulator hot path is
// single-threaded, and cross-thread counts only need eventual totals.
#pragma once

#include <cstdint>

namespace nidkit::util {

/// Total calls into the counting operator new since process start.
/// Only meaningful in binaries linked against nidkit_alloc_count.
std::uint64_t allocation_count() noexcept;

/// Total bytes requested from the counting operator new.
std::uint64_t allocated_bytes() noexcept;

}  // namespace nidkit::util
