#include "util/rng.hpp"

namespace nidkit {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single word, as recommended by
// the xoshiro authors.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : uniform(span));
}

double Rng::uniform01() {
  // 53 high bits → double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

SimDuration Rng::jitter(SimDuration lo, SimDuration hi) {
  if (hi <= lo) return lo;
  return SimDuration{uniform_range(lo.count(), hi.count())};
}

Rng Rng::fork() { return Rng(next() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace nidkit
