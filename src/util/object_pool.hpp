// Address-stable object pool for scenario-scoped engines.
//
// harness::Workspace keeps router fleets alive across scenarios: each
// scenario placement-constructs its routers into slots retained from the
// previous one, so steady-state setup allocates nothing. Slots are
// individually heap-allocated (one per object, reused forever), so the
// objects never relocate — routers hand `this`-capturing closures to the
// simulator and the network, which makes address stability a hard
// requirement. clear() destroys live objects in reverse construction order
// but keeps every slot for reuse.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace nidkit::util {

template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;
  ~ObjectPool() { clear(); }

  /// Constructs a new T in the next slot (reused if available) and returns
  /// it. References stay valid until clear().
  template <typename... Args>
  T& create(Args&&... args) {
    if (live_ == slots_.size()) slots_.push_back(std::make_unique<Slot>());
    T* obj = new (slots_[live_]->storage) T(std::forward<Args>(args)...);
    ++live_;
    return *obj;
  }

  /// Destroys all live objects (reverse construction order); slots are
  /// retained for the next round of create() calls.
  void clear() {
    for (std::size_t i = live_; i-- > 0;) get(i)->~T();
    live_ = 0;
  }

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  T& operator[](std::size_t i) { return *get(i); }
  const T& operator[](std::size_t i) const { return *get(i); }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
  };

  T* get(std::size_t i) const {
    return std::launder(reinterpret_cast<T*>(slots_[i]->storage));
  }

  std::vector<std::unique_ptr<Slot>> slots_;
  std::size_t live_ = 0;
};

}  // namespace nidkit::util
