// Streaming 128-bit content fingerprints.
//
// The result cache (src/cache/) addresses entries by a fingerprint over
// every simulation-affecting input; a fingerprint collision would silently
// serve one scenario's results for another, so a 128-bit digest (MD5 over
// a canonically serialized field stream) is used rather than a 64-bit
// mixing hash. MD5 is fine here: the inputs are our own configuration
// structs, not attacker-controlled data, and what matters is collision
// probability under random inputs, not preimage resistance.
//
// Encoding discipline: every field is appended in a fixed order with a
// fixed width (integers big-endian, doubles as IEEE-754 bit patterns,
// strings and byte blobs length-prefixed), so the byte stream — and hence
// the digest — is identical across platforms and process runs.
#pragma once

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace nidkit::util {

/// A 128-bit digest value: comparable, hashable into a hex file name.
struct Digest128 {
  std::array<std::uint8_t, 16> bytes{};

  /// 32 lowercase hex characters.
  std::string hex() const;

  friend auto operator<=>(const Digest128&, const Digest128&) = default;
};

/// Accumulates typed fields and produces their Digest128.
class Fingerprint {
 public:
  Fingerprint() : writer_(128) {}

  void u8(std::uint8_t v) { writer_.u8(v); }
  void u16(std::uint16_t v) { writer_.u16(v); }
  void u32(std::uint32_t v) { writer_.u32(v); }
  void u64(std::uint64_t v) {
    writer_.u32(static_cast<std::uint32_t>(v >> 32));
    writer_.u32(static_cast<std::uint32_t>(v));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { writer_.u8(v ? 1 : 0); }
  /// Exact bit pattern — distinguishes 0.0 from -0.0, which is the safe
  /// direction for a cache key (at worst a spurious miss).
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view v) {
    u64(v.size());
    writer_.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(v.data()), v.size()));
  }
  void bytes(std::span<const std::uint8_t> v) {
    u64(v.size());
    writer_.bytes(v);
  }

  /// Bytes appended so far (the digest preimage; exposed for tests).
  std::size_t size() const { return writer_.size(); }

  /// Digest of everything appended so far. May be called repeatedly as
  /// more fields arrive.
  Digest128 digest() const;

 private:
  ByteWriter writer_;
};

}  // namespace nidkit::util
