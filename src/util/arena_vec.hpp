// Arena-backed growable array.
//
// The columnar TraceLog stores each record field in its own flat column;
// ArenaVec is those columns. It is a std::vector with the ownership moved
// into a util::Arena: growth carves a bigger block out of the arena and
// memcpy-relocates, and nothing is ever freed individually — the arena's
// reset releases every column at once. Restricted to trivially destructible
// (and memcpy-relocatable) element types; there is deliberately no
// destructor, which also makes ArenaVec itself trivially destructible so
// columns can nest (the per-node index is an ArenaVec of ArenaVecs).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <span>
#include <type_traits>

#include "util/arena.hpp"

namespace nidkit::util {

template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_destructible_v<T>,
                "arena memory never runs destructors");

 public:
  ArenaVec() noexcept = default;
  explicit ArenaVec(Arena* arena) noexcept : arena_(arena) {}

  ArenaVec(const ArenaVec&) = delete;
  ArenaVec& operator=(const ArenaVec&) = delete;
  ArenaVec(ArenaVec&& other) noexcept
      : arena_(other.arena_),
        data_(other.data_),
        size_(other.size_),
        capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  ArenaVec& operator=(ArenaVec&& other) noexcept {
    arena_ = other.arena_;
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    return *this;
  }
  // No destructor: the arena owns the storage.

  void set_arena(Arena* arena) noexcept { arena_ = arena; }

  void push_back(const T& value) {
    if (size_ == capacity_) [[unlikely]] grow(size_ + 1);
    ::new (static_cast<void*>(data_ + size_)) T(value);
    ++size_;
  }
  void push_back(T&& value) {
    if (size_ == capacity_) [[unlikely]] grow(size_ + 1);
    ::new (static_cast<void*>(data_ + size_)) T(static_cast<T&&>(value));
    ++size_;
  }
  /// Appends default-constructed elements until size() == n.
  void resize(std::size_t n) {
    if (n > capacity_) grow(n);
    for (std::size_t i = size_; i < n; ++i)
      ::new (static_cast<void*>(data_ + i)) T{};
    size_ = n;
  }
  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }
  /// Forgets the contents (the arena still holds the old block until its
  /// own reset; callers that clear columns reset the arena too).
  void clear() noexcept {
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  T& back() noexcept { return data_[size_ - 1]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  std::span<const T> span() const noexcept { return {data_, size_}; }

 private:
  void grow(std::size_t min_cap) {
    std::size_t cap = capacity_ < 8 ? 8 : capacity_ * 2;
    if (cap < min_cap) cap = min_cap;
    T* fresh = arena_->allocate_array<T>(cap);
    // Element relocation is memcpy: T is trivially destructible and none
    // of the stored types point into their own footprint. The void* casts
    // acknowledge that for non-trivially-copyable T (nested ArenaVec).
    if (size_ > 0)
      std::memcpy(static_cast<void*>(fresh), static_cast<const void*>(data_),
                  size_ * sizeof(T));
    data_ = fresh;
    capacity_ = cap;
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace nidkit::util
