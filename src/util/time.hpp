// Simulation time types.
//
// The whole toolkit runs on a single deterministic clock: integer
// microseconds since simulation start, carried as std::chrono::microseconds
// so arithmetic and comparisons come from <chrono> and accidental unit
// mistakes (ms vs us) are caught by the type system.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace nidkit {

/// Absolute simulation time (microseconds since simulation start).
using SimTime = std::chrono::microseconds;

/// Relative simulation time span.
using SimDuration = std::chrono::microseconds;

/// Time zero: the instant the simulation starts.
inline constexpr SimTime kSimStart{0};

/// Renders a simulation time as seconds with millisecond precision,
/// e.g. "12.345s". Intended for traces and reports.
inline std::string format_time(SimTime t) {
  const auto us = t.count();
  const auto whole = us / 1'000'000;
  const auto frac = (us % 1'000'000) / 1'000;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld.%03llds",
                static_cast<long long>(whole), static_cast<long long>(frac));
  return buf;
}

}  // namespace nidkit
