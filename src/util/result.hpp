// Minimal expected-like result type (C++20 predates std::expected).
//
// Decoders return Result<T>: either a value or a human-readable error.
// Per the Core Guidelines we avoid exceptions for anticipated, recoverable
// conditions such as malformed packets arriving off the wire.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace nidkit {

struct Error {
  std::string message;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(state_).message;
  }

 private:
  std::variant<T, Error> state_;
};

/// Shorthand for failure construction: `return fail("truncated header");`
inline Error fail(std::string message) { return Error{std::move(message)}; }

}  // namespace nidkit
