// Minimal leveled logger.
//
// Logging is global-off by default: experiment runs are silent and the
// harness enables protocol-level logging only when a scenario sets
// `verbose`. Each simulation stays single-threaded, but the parallel
// executor runs several simulations at once, so the level gate is an
// atomic: concurrent enabled() checks are race-free (set_level is still
// meant to be called before scenarios start).
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "util/time.hpp"

namespace nidkit {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration.
class Log {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  static bool enabled(LogLevel level) {
    return level >= level_.load(std::memory_order_relaxed);
  }

  /// Emits one line: "[   12.345s] [ospf] message". `when` may be the
  /// current simulation time; pass kSimStart for time-less messages.
  static void write(LogLevel level, SimTime when, const std::string& tag,
                    const std::string& message);

 private:
  static std::atomic<LogLevel> level_;
};

}  // namespace nidkit

/// Streams `expr` into the log if `lvl` is enabled. Usage:
///   NIDKIT_LOG(kDebug, now, "ospf", "neighbor " << id << " -> Full");
#define NIDKIT_LOG(lvl, when, tag, expr)                                  \
  do {                                                                    \
    if (::nidkit::Log::enabled(::nidkit::LogLevel::lvl)) {                \
      std::ostringstream nidkit_log_os_;                                  \
      nidkit_log_os_ << expr;                                             \
      ::nidkit::Log::write(::nidkit::LogLevel::lvl, (when), (tag),        \
                           nidkit_log_os_.str());                         \
    }                                                                     \
  } while (0)
