#include "util/fingerprint.hpp"

#include "util/md5.hpp"

namespace nidkit::util {

std::string Digest128::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const auto b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

Digest128 Fingerprint::digest() const {
  Digest128 out;
  out.bytes = md5(writer_.view());
  return out;
}

}  // namespace nidkit::util
