#include "util/arena.hpp"

#include <algorithm>
#include <mutex>

namespace nidkit::util {

namespace {

// Chunk sizing: start small so a two-packet unit-test trace costs 64 KiB,
// grow geometrically so a million-record trace costs ~30 chunk refills
// (the refill allocations are what the bench's allocs/event figure
// amortises), cap so the pool recycles reasonably sized pieces.
constexpr std::size_t kMinChunkPayload = 64 * 1024;
constexpr std::size_t kMaxChunkPayload = 8 * 1024 * 1024;
// The pool retains at most this many payload bytes across all parked
// chunks; beyond it, dying arenas free to the OS.
constexpr std::size_t kMaxPooledBytes = 64 * 1024 * 1024;

struct Pool {
  std::mutex mu;
  void* head = nullptr;  // Chunk* chain, reusing the Chunk::next field
  std::size_t bytes = 0;
  std::size_t chunks = 0;
};

Pool& pool() {
  static Pool p;
  return p;
}

}  // namespace

Arena::~Arena() {
  // Park chunks for the next scenario; anything over the pool budget goes
  // back to the OS.
  auto park = [](Chunk* c) {
    while (c != nullptr) {
      Chunk* next = c->next;
      bool pooled = false;
      {
        Pool& p = pool();
        std::lock_guard lock(p.mu);
        if (p.bytes + c->size <= kMaxPooledBytes) {
          c->next = static_cast<Chunk*>(p.head);
          p.head = c;
          p.bytes += c->size;
          ++p.chunks;
          pooled = true;
        }
      }
      if (!pooled) ::operator delete(c);
      c = next;
    }
  };
  park(head_);
  park(reserve_);
}

void Arena::reset() noexcept {
  // Every owned chunk becomes reusable; nothing leaves this arena, so a
  // cleared TraceLog refills into memory it already touched.
  while (head_ != nullptr) {
    Chunk* next = head_->next;
    head_->next = reserve_;
    reserve_ = head_;
    head_ = next;
  }
  cursor_ = 0;
  limit_ = 0;
  bytes_allocated_ = 0;
}

void* Arena::allocate_slow(std::size_t size, std::size_t align) {
  // Next chunk must fit the request plus worst-case alignment slack.
  const std::size_t need = size + align;
  Chunk* c = nullptr;

  // Reuse a parked chunk of this arena first (reset() path).
  Chunk** prev = &reserve_;
  for (Chunk* r = reserve_; r != nullptr; prev = &r->next, r = r->next) {
    if (r->size >= need) {
      *prev = r->next;
      c = r;
      break;
    }
  }

  if (c == nullptr) {
    // Then a pooled chunk from a previous scenario.
    Pool& p = pool();
    std::lock_guard lock(p.mu);
    Chunk** pp = reinterpret_cast<Chunk**>(&p.head);
    for (Chunk* r = static_cast<Chunk*>(p.head); r != nullptr;
         pp = &r->next, r = r->next) {
      if (r->size >= need) {
        *pp = r->next;
        p.bytes -= r->size;
        --p.chunks;
        c = r;
        break;
      }
    }
  }

  if (c == nullptr) {
    next_chunk_size_ = std::min(
        kMaxChunkPayload, std::max(next_chunk_size_ * 2, kMinChunkPayload));
    // A single oversize request (one huge column grow) gets a chunk sized
    // for it without disturbing the geometric schedule for normal chunks.
    const std::size_t payload = std::max(next_chunk_size_, need);
    void* raw = ::operator new(sizeof(Chunk) + payload);
    c = ::new (raw) Chunk{};
    c->size = payload;
  } else {
    next_chunk_size_ =
        std::max(next_chunk_size_, std::min(c->size, kMaxChunkPayload));
  }

  c->next = head_;
  head_ = c;
  cursor_ = c->begin();
  limit_ = cursor_ + c->size;

  std::uintptr_t aligned =
      (cursor_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
  cursor_ = aligned + size;
  bytes_allocated_ += size;
  return reinterpret_cast<void*>(aligned);
}

std::size_t Arena::chunk_count() const noexcept {
  std::size_t n = 0;
  for (Chunk* c = head_; c != nullptr; c = c->next) ++n;
  for (Chunk* c = reserve_; c != nullptr; c = c->next) ++n;
  return n;
}

std::size_t Arena::pool_chunks() noexcept {
  Pool& p = pool();
  std::lock_guard lock(p.mu);
  return p.chunks;
}

void Arena::trim_pool() noexcept {
  Pool& p = pool();
  std::lock_guard lock(p.mu);
  Chunk* c = static_cast<Chunk*>(p.head);
  while (c != nullptr) {
    Chunk* next = c->next;
    ::operator delete(c);
    c = next;
  }
  p.head = nullptr;
  p.bytes = 0;
  p.chunks = 0;
}

}  // namespace nidkit::util
