#include "util/thread_pool.hpp"

#include <algorithm>

namespace nidkit {

std::size_t default_worker_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wakeup_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool::Counters ThreadPool::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counters{tasks_run_, max_queue_depth_};
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wakeup_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      // Counted at dequeue so that by the time a task's future is ready
      // its run is already visible in counters(); the destructor drains
      // the queue, so dequeued == executed.
      ++tasks_run_;
    }
    task();
  }
}

}  // namespace nidkit
