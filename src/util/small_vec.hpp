// Small-inline vector for trivially copyable elements.
//
// Digest structures (OspfDigest::lsas in particular) hold a handful of
// fixed-size entries per packet — a hello carries none, a typical LSU one
// or two — yet std::vector heap-allocates for every non-empty digest, and
// every trace record owns one. SmallVec keeps the first N elements inline
// and only spills to the heap for outliers (a DBD summarising a large
// LSDB). Restricted to trivially copyable T so relocation is memcpy and
// the type stays easy to audit.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>

namespace nidkit::util {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVec() noexcept = default;

  SmallVec(const SmallVec& other) { assign(other.data(), other.size_); }
  SmallVec(SmallVec&& other) noexcept { steal(other); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear_storage();
      assign(other.data(), other.size_);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear_storage();
      steal(other);
    }
    return *this;
  }
  ~SmallVec() { clear_storage(); }

  void push_back(const T& value) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data()[size_++] = value;
  }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

  void clear() { size_ = 0; }

  T* data() noexcept { return heap_ ? heap_ : inline_elems(); }
  const T* data() const noexcept {
    return heap_ ? heap_ : inline_elems();
  }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool is_inline() const noexcept { return heap_ == nullptr; }

  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }
  T& back() noexcept { return data()[size_ - 1]; }
  const T& back() const noexcept { return data()[size_ - 1]; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.data(), b.data(), a.size_ * sizeof(T)) == 0);
  }

 private:
  T* inline_elems() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  const T* inline_elems() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void assign(const T* src, std::size_t n) {
    size_ = 0;
    capacity_ = N;
    heap_ = nullptr;
    if (n > N) grow(n);
    if (n > 0) std::memcpy(data(), src, n * sizeof(T));
    size_ = n;
  }

  /// Takes other's storage; other is left empty (inline).
  void steal(SmallVec& other) noexcept {
    if (other.heap_) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
    } else {
      heap_ = nullptr;
      capacity_ = N;
      size_ = other.size_;
      if (size_ > 0)
        std::memcpy(inline_storage_, other.inline_storage_,
                    size_ * sizeof(T));
    }
    other.heap_ = nullptr;
    other.capacity_ = N;
    other.size_ = 0;
  }

  void grow(std::size_t cap) {
    cap = std::max(cap, N + 1);
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    if (size_ > 0) std::memcpy(fresh, data(), size_ * sizeof(T));
    if (heap_) ::operator delete(heap_);
    heap_ = fresh;
    capacity_ = cap;
  }

  void clear_storage() noexcept {
    if (heap_) ::operator delete(heap_);
    heap_ = nullptr;
    capacity_ = N;
    size_ = 0;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace nidkit::util
