#include "util/alloc_count.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}
}  // namespace

namespace nidkit::util {
std::uint64_t allocation_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}
std::uint64_t allocated_bytes() noexcept {
  return g_bytes.load(std::memory_order_relaxed);
}
}  // namespace nidkit::util

// Replaceable global allocation functions ([new.delete]): defining them in
// a linked TU overrides the library versions for the whole binary.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
