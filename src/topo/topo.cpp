#include "topo/topo.hpp"

#include <stdexcept>

namespace nidkit::topo {

std::string to_string(Kind kind) {
  switch (kind) {
    case Kind::kLinear: return "linear";
    case Kind::kMesh: return "mesh";
    case Kind::kRing: return "ring";
    case Kind::kStar: return "star";
    case Kind::kTree: return "tree";
    case Kind::kLan: return "lan";
  }
  return "?";
}

std::string Spec::name() const {
  return to_string(kind) + "-" + std::to_string(routers);
}

std::vector<Spec> paper_topologies() {
  return {Spec{Kind::kLinear, 2}, Spec{Kind::kMesh, 3},
          Spec{Kind::kLinear, 5}, Spec{Kind::kMesh, 5}};
}

std::vector<Spec> extended_topologies() {
  auto specs = paper_topologies();
  specs.push_back(Spec{Kind::kRing, 4});
  specs.push_back(Spec{Kind::kStar, 5});
  specs.push_back(Spec{Kind::kTree, 7});
  specs.push_back(Spec{Kind::kLan, 4});
  return specs;
}

Built build(netsim::Network& net, const Spec& spec) {
  if (spec.routers < 2)
    throw std::invalid_argument("topology needs at least 2 routers");
  if (spec.kind == Kind::kRing && spec.routers < 3)
    throw std::invalid_argument("a ring needs at least 3 routers");

  Built out;
  out.spec = spec;
  // Exact counts are known up front; reserving keeps a warm-workspace
  // scenario setup at two allocations (these result vectors), which the
  // workspace alloc-budget test pins down.
  out.nodes.reserve(spec.routers);
  out.segments.reserve(spec.kind == Kind::kMesh
                           ? spec.routers * (spec.routers - 1) / 2
                           : spec.routers);
  for (std::size_t i = 0; i < spec.routers; ++i)
    out.nodes.push_back(net.add_node("r" + std::to_string(i)));
  const auto& n = out.nodes;

  switch (spec.kind) {
    case Kind::kLinear:
      for (std::size_t i = 0; i + 1 < n.size(); ++i)
        out.segments.push_back(net.add_p2p(n[i], n[i + 1]));
      break;
    case Kind::kMesh:
      for (std::size_t i = 0; i < n.size(); ++i)
        for (std::size_t j = i + 1; j < n.size(); ++j)
          out.segments.push_back(net.add_p2p(n[i], n[j]));
      break;
    case Kind::kRing:
      for (std::size_t i = 0; i < n.size(); ++i)
        out.segments.push_back(net.add_p2p(n[i], n[(i + 1) % n.size()]));
      break;
    case Kind::kStar:
      for (std::size_t i = 1; i < n.size(); ++i)
        out.segments.push_back(net.add_p2p(n[0], n[i]));
      break;
    case Kind::kTree:
      for (std::size_t i = 1; i < n.size(); ++i)
        out.segments.push_back(net.add_p2p(n[(i - 1) / 2], n[i]));
      break;
    case Kind::kLan:
      out.segments.push_back(net.add_lan(n));
      break;
  }
  return out;
}

}  // namespace nidkit::topo
