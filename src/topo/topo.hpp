// Topology builders.
//
// The paper improves the extensiveness of mined relationships by running
// each implementation over diverse topologies — linear chains with 2 or 5
// routers and meshes with 3 or 5 routers in its experiments, with "more
// topologies can be added" noted. These builders cover the paper's four
// plus further shapes (ring, star, tree, broadcast LAN) used by the
// extensiveness bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/network.hpp"

namespace nidkit::topo {

enum class Kind {
  kLinear,  ///< chain of p2p links
  kMesh,    ///< full mesh of p2p links
  kRing,    ///< cycle of p2p links
  kStar,    ///< hub-and-spoke p2p
  kTree,    ///< balanced binary tree of p2p links
  kLan,     ///< single broadcast segment (exercises DR election)
};

std::string to_string(Kind kind);

/// Declarative topology: kind + router count.
struct Spec {
  Kind kind = Kind::kLinear;
  std::size_t routers = 2;

  std::string name() const;
};

/// The paper's four topologies: linear-2, mesh-3, linear-5, mesh-5.
std::vector<Spec> paper_topologies();

/// Extended set: the paper's four plus ring-4, star-5, tree-7, lan-4.
std::vector<Spec> extended_topologies();

/// Nodes and segments created for a spec.
struct Built {
  Spec spec;
  std::vector<netsim::NodeId> nodes;
  std::vector<netsim::SegmentId> segments;
};

/// Instantiates `spec` inside `net` with nodes named r0, r1, ...
/// Throws std::invalid_argument for specs that make no sense
/// (fewer than 2 routers, a 1-node ring, ...).
Built build(netsim::Network& net, const Spec& spec);

}  // namespace nidkit::topo
